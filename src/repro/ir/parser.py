"""Textual IR parser: the inverse of :mod:`repro.ir.printer`.

The grammar is line-oriented:

* ``module NAME``
* ``struct Name { field: type, ... }``  (may span lines until ``}``)
* ``global name: type [= initializer]``
* ``func name(p: type, ...) -> type {`` ... ``}`` with ``label:`` lines
  introducing basic blocks and one instruction per line.

Comments run from ``#`` or ``;`` to end of line.  An optional trailing
`` @ file:line`` attaches a source location to an instruction.
"""

from __future__ import annotations

import re

from repro.errors import IRParseError
from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import (
    Assert,
    BarrierInit,
    BarrierWait,
    Br,
    Call,
    Cast,
    CondBr,
    CondInit,
    CondNotify,
    CondWait,
    Delay,
    FieldAddr,
    Free,
    IndexAddr,
    Join,
    Lock,
    LockInit,
    Malloc,
    Ret,
    RwInit,
    RwRdLock,
    RwUnlock,
    RwWrLock,
    SemInit,
    SemPost,
    SemWait,
    SourceLoc,
    Spawn,
    Store,
    Unlock,
)
from repro.ir.module import Module
from repro.ir.types import (
    BARRIER,
    COND,
    F64,
    I1,
    I8,
    I32,
    I64,
    LOCK,
    RWLOCK,
    SEMA,
    THREAD,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
)
from repro.ir.values import Constant, FunctionRef, NullPointer, Value

_BASE_TYPES: dict[str, Type] = {
    "void": VOID,
    "i1": I1,
    "i8": I8,
    "i32": I32,
    "i64": I64,
    "f64": F64,
    "lock": LOCK,
    "cond": COND,
    "rwlock": RWLOCK,
    "sema": SEMA,
    "barrier": BARRIER,
    "thread": THREAD,
}

_LOC_RE = re.compile(r"\s+@\s+([\w./\-]+):(\d+)\s*$")
_BINOPS = {"add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr"}


def parse_module(text: str, finalize: bool = True) -> Module:
    return _Parser(text).parse(finalize=finalize)


class _Parser:
    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.pos = 0
        self.module: Module | None = None

    # -- line plumbing ------------------------------------------------------

    def _next_line(self) -> tuple[int, str] | None:
        while self.pos < len(self.lines):
            raw = self.lines[self.pos]
            self.pos += 1
            line = _strip_comment(raw).strip()
            if line:
                return self.pos, line
        return None

    def _fail(self, message: str, lineno: int | None = None) -> IRParseError:
        return IRParseError(message, lineno if lineno is not None else self.pos)

    # -- top level -----------------------------------------------------------

    def parse(self, finalize: bool = True) -> Module:
        first = self._next_line()
        if first is None:
            raise self._fail("empty input")
        lineno, line = first
        if not line.startswith("module "):
            raise self._fail("input must start with 'module NAME'", lineno)
        self.module = Module(line[len("module "):].strip())
        # Two passes over the rest: declarations (structs/globals/function
        # signatures) first so bodies may reference anything, then bodies.
        decl_start = self.pos
        self._parse_declarations()
        self.pos = decl_start
        self._parse_bodies()
        if finalize:
            self.module.finalize()
        return self.module

    def _parse_declarations(self) -> None:
        while True:
            item = self._next_line()
            if item is None:
                return
            lineno, line = item
            if line.startswith("struct "):
                self._parse_struct(lineno, line)
            elif line.startswith("global "):
                continue  # parsed in the body pass (needs struct types only)
            elif line.startswith("func "):
                self._parse_func_signature(lineno, line)
                self._skip_func_body(lineno)
            else:
                raise self._fail(f"unexpected top-level line: {line!r}", lineno)

    def _parse_bodies(self) -> None:
        while True:
            item = self._next_line()
            if item is None:
                return
            lineno, line = item
            if line.startswith("struct "):
                self._skip_struct(lineno, line)
            elif line.startswith("global "):
                self._parse_global(lineno, line)
            elif line.startswith("func "):
                self._parse_func_body(lineno, line)
            else:
                raise self._fail(f"unexpected top-level line: {line!r}", lineno)

    # -- structs -----------------------------------------------------------

    def _collect_struct_text(self, lineno: int, line: str) -> tuple[str, str]:
        m = re.match(r"struct\s+(\w+)\s*\{", line)
        if not m:
            raise self._fail(f"malformed struct declaration: {line!r}", lineno)
        name = m.group(1)
        body = line[m.end():]
        while "}" not in body:
            item = self._next_line()
            if item is None:
                raise self._fail(f"unterminated struct {name}", lineno)
            body += " " + item[1]
        body = body[: body.index("}")]
        return name, body

    def _parse_struct(self, lineno: int, line: str) -> None:
        assert self.module is not None
        name, body = self._collect_struct_text(lineno, line)
        st = self.module.add_struct(name)
        fields: list[tuple[str, Type]] = []
        for part in _split_top_level(body):
            if not part.strip():
                continue
            fname, _, ftext = part.partition(":")
            if not ftext:
                raise self._fail(f"malformed field {part!r} in struct {name}", lineno)
            fields.append((fname.strip(), self._parse_type(ftext.strip(), lineno)))
        st.set_body(fields)

    def _skip_struct(self, lineno: int, line: str) -> None:
        self._collect_struct_text(lineno, line)

    # -- globals ------------------------------------------------------------

    def _parse_global(self, lineno: int, line: str) -> None:
        assert self.module is not None
        m = re.match(r"global\s+(\w+)\s*:\s*(.+?)(?:\s*=\s*(.+))?$", line)
        if not m:
            raise self._fail(f"malformed global: {line!r}", lineno)
        name, ty_text, init_text = m.group(1), m.group(2), m.group(3)
        ty = self._parse_type(ty_text.strip(), lineno)
        init: Value | None = None
        if init_text is not None:
            init = self._parse_literal(init_text.strip(), ty, lineno)
        self.module.add_global(name, ty, init)

    # -- functions ------------------------------------------------------------

    _FUNC_RE = re.compile(r"func\s+(\w+)\s*\((.*)\)\s*->\s*(.+?)\s*\{$")

    def _parse_func_signature(self, lineno: int, line: str) -> Function:
        assert self.module is not None
        m = self._FUNC_RE.match(line)
        if not m:
            raise self._fail(f"malformed function header: {line!r}", lineno)
        name, params_text, ret_text = m.group(1), m.group(2), m.group(3)
        params: list[tuple[str, Type]] = []
        for part in _split_top_level(params_text):
            if not part.strip():
                continue
            pname, _, ptext = part.partition(":")
            if not ptext:
                raise self._fail(f"malformed parameter {part!r}", lineno)
            params.append((pname.strip(), self._parse_type(ptext.strip(), lineno)))
        ret = self._parse_type(ret_text, lineno)
        return self.module.add_function(name, ret, params)

    def _skip_func_body(self, lineno: int) -> None:
        while True:
            item = self._next_line()
            if item is None:
                raise self._fail("unterminated function body", lineno)
            if item[1] == "}":
                return

    def _parse_func_body(self, lineno: int, line: str) -> None:
        assert self.module is not None
        m = self._FUNC_RE.match(line)
        if not m:
            raise self._fail(f"malformed function header: {line!r}", lineno)
        fn = self.module.function(m.group(1))
        body: list[tuple[int, str]] = []
        while True:
            item = self._next_line()
            if item is None:
                raise self._fail("unterminated function body", lineno)
            if item[1] == "}":
                break
            body.append(item)
        self._parse_instructions(fn, body)

    def _parse_instructions(self, fn: Function, body: list[tuple[int, str]]) -> None:
        # Create all blocks first so forward branches resolve.
        blocks: dict[str, BasicBlock] = {}
        for lno, text in body:
            if text.endswith(":") and re.fullmatch(r"\w+:", text):
                label = text[:-1]
                if label in blocks:
                    raise self._fail(f"duplicate label {label!r}", lno)
                blocks[label] = fn.add_block(label)
        if not blocks:
            raise self._fail(f"function {fn.name} has no blocks")
        env: dict[str, Value] = {p.name: p for p in fn.params}
        builder = _InstructionParser(self, fn, blocks, env)
        current: BasicBlock | None = None
        for lno, text in body:
            if text.endswith(":") and re.fullmatch(r"\w+:", text):
                current = blocks[text[:-1]]
                continue
            if current is None:
                raise self._fail(f"instruction before first label: {text!r}", lno)
            builder.parse_into(current, text, lno)

    # -- types ----------------------------------------------------------------

    def _parse_type(self, text: str, lineno: int) -> Type:
        assert self.module is not None
        text = text.strip()
        if text in _BASE_TYPES:
            return _BASE_TYPES[text]
        if text.startswith("ptr<") and text.endswith(">"):
            return PointerType(self._parse_type(text[4:-1], lineno))
        m = re.fullmatch(r"\[\s*(\d+)\s*x\s+(.+)\]", text)
        if m:
            return ArrayType(self._parse_type(m.group(2), lineno), int(m.group(1)))
        m = re.fullmatch(r"fn\((.*)\)\s*->\s*(.+)", text)
        if m:
            params = [
                self._parse_type(p, lineno)
                for p in _split_top_level(m.group(1))
                if p.strip()
            ]
            return FunctionType(self._parse_type(m.group(2), lineno), params)
        if text in self.module.structs:
            return self.module.structs[text]
        raise self._fail(f"unknown type {text!r}", lineno)

    # -- literals ----------------------------------------------------------

    def _parse_literal(self, text: str, ty: Type, lineno: int) -> Value:
        if text == "null":
            if not isinstance(ty, PointerType):
                raise self._fail(f"null literal needs a pointer type, got {ty}", lineno)
            return NullPointer(ty)
        if text in ("true", "false"):
            return Constant(I1, 1 if text == "true" else 0)
        try:
            if isinstance(ty, FloatType):
                return Constant(ty, float(text))
            return Constant(ty, int(text, 0))
        except ValueError:
            raise self._fail(f"bad literal {text!r} for type {ty}", lineno) from None


class _InstructionParser:
    """Parses one instruction line into a block, resolving operands."""

    def __init__(
        self,
        parser: _Parser,
        fn: Function,
        blocks: dict[str, BasicBlock],
        env: dict[str, Value],
    ):
        self.parser = parser
        self.module = parser.module
        assert self.module is not None
        self.fn = fn
        self.blocks = blocks
        self.env = env
        self.builder = IRBuilder.__new__(IRBuilder)  # reuse coercions only
        self.builder.module = self.module
        self.builder._fresh = 0
        self.builder._loc = None

    def parse_into(self, block: BasicBlock, text: str, lineno: int) -> None:
        loc: SourceLoc | None = None
        m = _LOC_RE.search(text)
        if m:
            loc = SourceLoc(m.group(1), int(m.group(2)))
            text = text[: m.start()]
        name = ""
        if text.startswith("%"):
            name_part, _, rest = text.partition("=")
            name = name_part.strip()[1:]
            text = rest.strip()
            if not name or not text:
                raise self.parser._fail(f"malformed assignment: {text!r}", lineno)
        instr = self._parse_body(text, name, lineno)
        instr.loc = loc
        block.append(instr)
        if name:
            instr.name = name
            self.env[name] = instr

    # -- operand helpers ----------------------------------------------------

    def _operand(self, text: str, expected: Type | None, lineno: int) -> Value:
        text = text.strip()
        if text.startswith("%"):
            name = text[1:]
            if name not in self.env:
                raise self.parser._fail(f"unknown value %{name}", lineno)
            return self.env[name]
        if text.startswith("@"):
            name = text[1:]
            assert self.module is not None
            if name in self.module.globals:
                return self.module.globals[name]
            if name in self.module.functions:
                return FunctionRef(self.module.functions[name])
            raise self.parser._fail(f"unknown global @{name}", lineno)
        if expected is None:
            expected = I64
        return self.parser._parse_literal(text, expected, lineno)

    def _split_args(self, text: str, lineno: int) -> list[str]:
        return [p for p in _split_top_level(text) if p.strip()]

    # -- instruction bodies ---------------------------------------------------

    def _parse_body(self, text: str, name: str, lineno: int):
        op, _, rest = text.partition(" ")
        rest = rest.strip()
        fail = self.parser._fail
        parse_type = lambda t: self.parser._parse_type(t, lineno)  # noqa: E731

        if op == "alloca":
            from repro.ir.instructions import Alloca

            return Alloca(parse_type(rest), name)
        if op == "malloc":
            parts = self._split_args(rest, lineno)
            ty = parse_type(parts[0])
            count = self._operand(parts[1], I64, lineno) if len(parts) > 1 else None
            return Malloc(ty, count, name)
        if op == "free":
            return Free(self._operand(rest, None, lineno))
        if op == "load":
            from repro.ir.instructions import Load

            return Load(self._operand(rest, None, lineno), name)
        if op == "store":
            parts = self._split_args(rest, lineno)
            if len(parts) != 2:
                raise fail(f"store takes 2 operands: {text!r}", lineno)
            pointer = self._operand(parts[1], None, lineno)
            pointee = getattr(pointer.ty, "pointee", None)
            value = self._operand(parts[0], pointee, lineno)
            return Store(value, pointer)
        if op == "fieldaddr":
            parts = self._split_args(rest, lineno)
            if len(parts) != 2:
                raise fail(f"fieldaddr takes pointer, field: {text!r}", lineno)
            return FieldAddr(self._operand(parts[0], None, lineno), parts[1].strip(), name)
        if op == "indexaddr":
            parts = self._split_args(rest, lineno)
            if len(parts) != 2:
                raise fail(f"indexaddr takes pointer, index: {text!r}", lineno)
            return IndexAddr(
                self._operand(parts[0], None, lineno),
                self._operand(parts[1], I64, lineno),
                name,
            )
        if op in _BINOPS:
            from repro.ir.instructions import BinOp

            parts = self._split_args(rest, lineno)
            if len(parts) != 2:
                raise fail(f"{op} takes 2 operands: {text!r}", lineno)
            lhs = self._operand(parts[0], I64, lineno)
            rhs = self._operand(parts[1], lhs.ty, lineno)
            return BinOp(op, lhs, rhs, name)
        if op == "cmp":
            from repro.ir.instructions import Cmp

            cmp_op, _, operands = rest.partition(" ")
            parts = self._split_args(operands, lineno)
            if len(parts) != 2:
                raise fail(f"cmp takes 2 operands: {text!r}", lineno)
            lhs = self._operand(parts[0], I64, lineno)
            rhs = self._operand(parts[1], lhs.ty, lineno)
            return Cmp(cmp_op, lhs, rhs, name)
        if op == "cast":
            m = re.fullmatch(r"(.+?)\s+to\s+(.+)", rest)
            if not m:
                raise fail(f"malformed cast: {text!r}", lineno)
            src_text, to_text = m.group(1).strip(), m.group(2).strip()
            to_ty = parse_type(to_text)
            tm = re.fullmatch(r"(\S+)\s+(-?\d+)", src_text)
            if tm and not src_text.startswith(("%", "@")):
                src_ty = parse_type(tm.group(1))
                src: Value = Constant(src_ty, int(tm.group(2)))
            else:
                src = self._operand(src_text, None, lineno)
            return Cast(src, to_ty, name)
        if op == "br":
            target = self.blocks.get(rest)
            if target is None:
                raise fail(f"unknown label {rest!r}", lineno)
            return Br(target)
        if op == "cbr":
            parts = self._split_args(rest, lineno)
            if len(parts) != 3:
                raise fail(f"cbr takes cond, then, else: {text!r}", lineno)
            cond = self._operand(parts[0], I1, lineno)
            then_b = self.blocks.get(parts[1].strip())
            else_b = self.blocks.get(parts[2].strip())
            if then_b is None or else_b is None:
                raise fail(f"unknown label in cbr: {text!r}", lineno)
            return CondBr(cond, then_b, else_b)
        if op == "ret" or text == "ret":
            if rest:
                return Ret(self._operand(rest, self.fn.return_type, lineno))
            return Ret()
        if op in ("call", "spawn"):
            m = re.fullmatch(r"(@\w+|%\w+)\s*\((.*)\)", rest)
            if not m:
                raise fail(f"malformed {op}: {text!r}", lineno)
            callee = self._operand(m.group(1), None, lineno)
            fn_ty = _callee_type(callee)
            arg_texts = self._split_args(m.group(2), lineno)
            if fn_ty is not None and len(arg_texts) == len(fn_ty.params):
                args = [
                    self._operand(t, pty, lineno)
                    for t, pty in zip(arg_texts, fn_ty.params)
                ]
            else:
                args = [self._operand(t, None, lineno) for t in arg_texts]
            if op == "call":
                return Call(callee, args, name)
            return Spawn(callee, args, name)
        if op == "lockinit":
            return LockInit(self._operand(rest, None, lineno))
        if op == "lock":
            return Lock(self._operand(rest, None, lineno))
        if op == "unlock":
            return Unlock(self._operand(rest, None, lineno))
        if op == "condinit":
            return CondInit(self._operand(rest, None, lineno))
        if op == "condwait":
            return CondWait(self._operand(rest, None, lineno))
        if op == "condnotify":
            return CondNotify(self._operand(rest, None, lineno))
        if op == "rwinit":
            return RwInit(self._operand(rest, None, lineno))
        if op == "rwrdlock":
            return RwRdLock(self._operand(rest, None, lineno))
        if op == "rwwrlock":
            return RwWrLock(self._operand(rest, None, lineno))
        if op == "rwunlock":
            return RwUnlock(self._operand(rest, None, lineno))
        if op == "seminit":
            parts = self._split_args(rest, lineno)
            if len(parts) != 2:
                raise fail(f"seminit takes pointer, count: {text!r}", lineno)
            return SemInit(
                self._operand(parts[0], None, lineno),
                self._operand(parts[1], I64, lineno),
            )
        if op == "semwait":
            return SemWait(self._operand(rest, None, lineno))
        if op == "sempost":
            return SemPost(self._operand(rest, None, lineno))
        if op == "barrierinit":
            parts = self._split_args(rest, lineno)
            if len(parts) != 2:
                raise fail(f"barrierinit takes pointer, parties: {text!r}", lineno)
            return BarrierInit(
                self._operand(parts[0], None, lineno),
                self._operand(parts[1], I64, lineno),
            )
        if op == "barrierwait":
            return BarrierWait(self._operand(rest, None, lineno))
        if op == "join":
            return Join(self._operand(rest, None, lineno))
        if op == "delay":
            return Delay(self._operand(rest, I64, lineno))
        if op == "assert":
            m = re.fullmatch(r'(.+?)\s*,\s*"(.*)"', rest)
            if m:
                cond = self._operand(m.group(1), I1, lineno)
                return Assert(cond, m.group(2))
            return Assert(self._operand(rest, I1, lineno))
        raise fail(f"unknown instruction {op!r}", lineno)


def _callee_type(callee: Value) -> FunctionType | None:
    if isinstance(callee, FunctionRef):
        return callee.function.type
    ty = callee.ty
    if isinstance(ty, PointerType) and isinstance(ty.pointee, FunctionType):
        return ty.pointee
    return None


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line


def _split_top_level(text: str) -> list[str]:
    """Split on commas not nested inside (), <>, [], or quotes."""
    parts: list[str] = []
    depth = 0
    in_quotes = False
    current: list[str] = []
    for ch in text:
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
        elif in_quotes:
            current.append(ch)
        elif ch in "(<[":
            depth += 1
            current.append(ch)
        elif ch in ")>]":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts
