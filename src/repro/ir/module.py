"""Modules: the unit of compilation, execution, and analysis.

A module owns struct types, global variables, and functions.  Before a
module can be executed or analyzed it must be ``finalize()``d, which

* verifies structural invariants (via :mod:`repro.ir.verifier`),
* assigns module-unique ``uid`` integers to every instruction, basic
  block, and global (uids are the "program counters" used by traces,
  breakpoints and diagnosis reports), and
* builds the uid lookup tables used throughout the stack.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.types import StructType, Type
from repro.ir.values import GlobalVariable, Value


class Module:
    def __init__(self, name: str):
        self.name = name
        self.structs: dict[str, StructType] = {}
        self.globals: dict[str, GlobalVariable] = {}
        self.functions: dict[str, Function] = {}
        self.finalized = False
        self._instr_by_uid: dict[int, Instruction] = {}
        self._block_by_uid: dict[int, BasicBlock] = {}

    # -- construction ----------------------------------------------------

    def add_struct(self, name: str, fields: Sequence[tuple[str, Type]] | None = None) -> StructType:
        if name in self.structs:
            raise IRError(f"duplicate struct {name!r} in module {self.name}")
        st = StructType(name, fields)
        self.structs[name] = st
        return st

    def struct(self, name: str) -> StructType:
        try:
            return self.structs[name]
        except KeyError:
            raise IRError(f"module {self.name} has no struct {name!r}") from None

    def add_global(self, name: str, value_type: Type, initializer: Value | None = None) -> GlobalVariable:
        if name in self.globals:
            raise IRError(f"duplicate global {name!r} in module {self.name}")
        g = GlobalVariable(name, value_type, initializer)
        self.globals[name] = g
        return g

    def global_var(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise IRError(f"module {self.name} has no global {name!r}") from None

    def add_function(self, name: str, ret: Type, params: Sequence[tuple[str, Type]]) -> Function:
        if name in self.functions:
            raise IRError(f"duplicate function {name!r} in module {self.name}")
        fn = Function(name, ret, params)
        self.functions[name] = fn
        return fn

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"module {self.name} has no function {name!r}") from None

    # -- finalization ------------------------------------------------------

    def finalize(self, verify: bool = True) -> "Module":
        """Verify and assign uids.  Idempotent."""
        if self.finalized:
            return self
        if verify:
            from repro.ir.verifier import verify_module

            verify_module(self)
        next_uid = 1  # uid 0 is reserved as "no instruction"
        for g in self.globals.values():
            g.uid = next_uid
            next_uid += 1
        for fn in self.functions.values():
            for block in fn.blocks:
                block.uid = next_uid
                self._block_by_uid[next_uid] = block
                next_uid += 1
                for index, instr in enumerate(block.instructions):
                    instr.uid = next_uid
                    instr.block_index = index
                    self._instr_by_uid[next_uid] = instr
                    next_uid += 1
        self.finalized = True
        return self

    def refinalize(self, verify: bool = True) -> "Module":
        """Re-verify and re-assign uids after a structural edit.

        For :mod:`repro.validate`'s IR-level candidate fixes: a patched
        module gets a fresh, gap-free uid numbering (old uids are
        remapped by the fixer).  Only ever call this on a module that no
        uid-keyed consumer (caches, traces, breakpoints) has seen —
        fixes operate on fresh builder output for exactly that reason.
        """
        self.finalized = False
        self._instr_by_uid.clear()
        self._block_by_uid.clear()
        return self.finalize(verify)

    def _require_finalized(self) -> None:
        if not self.finalized:
            raise IRError(f"module {self.name} is not finalized")

    def instruction(self, uid: int) -> Instruction:
        self._require_finalized()
        try:
            return self._instr_by_uid[uid]
        except KeyError:
            raise IRError(f"module {self.name} has no instruction uid={uid}") from None

    def instruction_or_none(self, uid: int) -> Instruction | None:
        """Like :meth:`instruction` but None for unknown uids (e.g. a
        traced uid that names a block or global, not an instruction)."""
        self._require_finalized()
        return self._instr_by_uid.get(uid)

    def block(self, uid: int) -> BasicBlock:
        self._require_finalized()
        try:
            return self._block_by_uid[uid]
        except KeyError:
            raise IRError(f"module {self.name} has no block uid={uid}") from None

    def instructions(self) -> Iterator[Instruction]:
        for fn in self.functions.values():
            yield from fn.instructions()

    def instruction_count(self) -> int:
        return sum(1 for _ in self.instructions())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Module {self.name} structs={len(self.structs)} "
            f"globals={len(self.globals)} functions={len(self.functions)}>"
        )
