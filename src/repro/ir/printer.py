"""Textual IR printer.

Renders a module in the assembly-like syntax accepted by
:mod:`repro.ir.parser`, so ``parse(print_module(m))`` round-trips.
Instruction results print as ``%name``; globals and functions as
``@name``; integer literals carry their type only where the parser needs
it (``cast``) and print bare elsewhere.
"""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Assert,
    BarrierInit,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    Delay,
    FieldAddr,
    Free,
    IndexAddr,
    Instruction,
    Join,
    Load,
    Lock,
    LockInit,
    Malloc,
    Ret,
    SemInit,
    Spawn,
    Store,
    Unlock,
    _SyncOp,
)
from repro.ir.module import Module
from repro.ir.values import (
    Argument,
    Constant,
    FunctionRef,
    GlobalVariable,
    NullPointer,
    Value,
)


def print_module(module: Module) -> str:
    lines: list[str] = [f"module {module.name}", ""]
    for st in module.structs.values():
        fields = ", ".join(f"{f.name}: {f.ty}" for f in st.fields)
        lines.append(f"struct {st.name} {{ {fields} }}")
    if module.structs:
        lines.append("")
    for g in module.globals.values():
        init = ""
        if g.initializer is not None:
            init = f" = {operand(g.initializer)}"
        lines.append(f"global {g.name}: {g.value_type}{init}")
    if module.globals:
        lines.append("")
    for fn in module.functions.values():
        lines.append(print_function(fn))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def print_function(fn: Function) -> str:
    params = ", ".join(f"{p.name}: {p.ty}" for p in fn.params)
    lines = [f"func {fn.name}({params}) -> {fn.return_type} {{"]
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instructions:
            lines.append(f"  {print_instruction(instr)}")
    lines.append("}")
    return "\n".join(lines)


def operand(value: Value) -> str:
    if isinstance(value, Constant):
        return str(value.value)
    if isinstance(value, NullPointer):
        return "null"
    if isinstance(value, GlobalVariable):
        return f"@{value.name}"
    if isinstance(value, FunctionRef):
        return f"@{value.function.name}"
    if isinstance(value, (Argument, Instruction)):
        return f"%{value.name}"
    raise TypeError(f"cannot print operand {value!r}")


def print_instruction(instr: Instruction) -> str:
    text = _instruction_body(instr)
    if instr.loc is not None:
        text += f"  @ {instr.loc.file}:{instr.loc.line}"
    return text


def _instruction_body(instr: Instruction) -> str:
    if isinstance(instr, Alloca):
        return f"%{instr.name} = alloca {instr.allocated_type}"
    if isinstance(instr, Malloc):
        count = f", {operand(instr.count)}" if instr.count is not None else ""
        return f"%{instr.name} = malloc {instr.allocated_type}{count}"
    if isinstance(instr, Free):
        return f"free {operand(instr.pointer)}"
    if isinstance(instr, Load):
        return f"%{instr.name} = load {operand(instr.pointer)}"
    if isinstance(instr, Store):
        return f"store {operand(instr.value)}, {operand(instr.pointer)}"
    if isinstance(instr, FieldAddr):
        return f"%{instr.name} = fieldaddr {operand(instr.pointer)}, {instr.field_name}"
    if isinstance(instr, IndexAddr):
        return f"%{instr.name} = indexaddr {operand(instr.pointer)}, {operand(instr.index)}"
    if isinstance(instr, BinOp):
        return f"%{instr.name} = {instr.op} {operand(instr.lhs)}, {operand(instr.rhs)}"
    if isinstance(instr, Cmp):
        return f"%{instr.name} = cmp {instr.op} {operand(instr.lhs)}, {operand(instr.rhs)}"
    if isinstance(instr, Cast):
        src = instr.value
        if isinstance(src, Constant):
            return f"%{instr.name} = cast {src.ty} {src.value} to {instr.ty}"
        return f"%{instr.name} = cast {operand(src)} to {instr.ty}"
    if isinstance(instr, Br):
        return f"br {instr.target.name}"
    if isinstance(instr, CondBr):
        return (
            f"cbr {operand(instr.cond)}, "
            f"{instr.then_block.name}, {instr.else_block.name}"
        )
    if isinstance(instr, Ret):
        return f"ret {operand(instr.value)}" if instr.value is not None else "ret"
    if isinstance(instr, Call):
        args = ", ".join(operand(a) for a in instr.args)
        callee = operand(instr.callee)
        if instr.name and str(instr.ty) != "void":
            return f"%{instr.name} = call {callee}({args})"
        return f"call {callee}({args})"
    if isinstance(instr, LockInit):
        return f"lockinit {operand(instr.pointer)}"
    if isinstance(instr, Lock):
        return f"lock {operand(instr.pointer)}"
    if isinstance(instr, Unlock):
        return f"unlock {operand(instr.pointer)}"
    if isinstance(instr, SemInit):
        return f"seminit {operand(instr.pointer)}, {operand(instr.count)}"
    if isinstance(instr, BarrierInit):
        return f"barrierinit {operand(instr.pointer)}, {operand(instr.parties)}"
    if isinstance(instr, _SyncOp):
        return f"{instr.opcode} {operand(instr.pointer)}"
    if isinstance(instr, Spawn):
        args = ", ".join(operand(a) for a in instr.args)
        return f"%{instr.name} = spawn {operand(instr.callee)}({args})"
    if isinstance(instr, Join):
        return f"join {operand(instr.handle)}"
    if isinstance(instr, Delay):
        return f"delay {operand(instr.duration)}"
    if isinstance(instr, Assert):
        return f'assert {operand(instr.cond)}, "{instr.message}"'
    raise TypeError(f"cannot print instruction {instr!r}")
