"""Control-flow graph utilities.

Used by the PT decoder (re-walking branch decisions), the runtime server
(predecessor-block fallback for breakpoint placement, paper §4.1), and
Gist's control-dependence computation.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module


def successors(block: BasicBlock) -> list[BasicBlock]:
    return block.successors()


def predecessors_map(fn: Function) -> dict[BasicBlock, list[BasicBlock]]:
    """Map each block of ``fn`` to the blocks that branch to it."""
    preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            if succ in preds:  # foreign targets are the verifier's to report
                preds[succ].append(block)
    return preds


def predecessors(block: BasicBlock) -> list[BasicBlock]:
    """Predecessors of a single block (convenience over predecessors_map)."""
    fn = block.function
    if fn is None:
        return []
    return predecessors_map(fn)[block]


def reachable_blocks(fn: Function) -> set[BasicBlock]:
    """Blocks reachable from the entry block."""
    seen: set[BasicBlock] = set()
    work: deque[BasicBlock] = deque([fn.entry])
    while work:
        block = work.popleft()
        if block in seen:
            continue
        seen.add(block)
        work.extend(block.successors())
    return seen


def predecessor_chain(block: BasicBlock, max_depth: int = 8) -> list[BasicBlock]:
    """Blocks that can precede ``block``, nearest first, BFS order.

    This implements the server's fallback search when a trace cannot be
    triggered at the failure block itself (paper §4.1: "iterate over
    predecessor blocks until they reach a block where a trace can be
    generated").
    """
    fn = block.function
    if fn is None:
        return []
    preds = predecessors_map(fn)
    out: list[BasicBlock] = []
    seen = {block}
    frontier = deque(preds[block])
    depth = 0
    while frontier and depth < max_depth:
        next_frontier: deque[BasicBlock] = deque()
        while frontier:
            b = frontier.popleft()
            if b in seen:
                continue
            seen.add(b)
            out.append(b)
            next_frontier.extend(preds[b])
        frontier = next_frontier
        depth += 1
    return out


def dominators(fn: Function) -> dict[BasicBlock, set[BasicBlock]]:
    """Classic iterative dominator analysis.

    Returns, for each reachable block, the set of blocks that dominate it
    (including itself).  Unreachable blocks are absent.  The verifier
    uses this to enforce SSA def-dominates-use for cross-block values.
    """
    reachable = reachable_blocks(fn)
    blocks_in_order = [b for b in fn.blocks if b in reachable]
    preds = predecessors_map(fn)
    dom: dict[BasicBlock, set[BasicBlock]] = {
        b: set(blocks_in_order) for b in blocks_in_order
    }
    dom[fn.entry] = {fn.entry}
    changed = True
    while changed:
        changed = False
        for b in blocks_in_order:
            if b is fn.entry:
                continue
            block_preds = [p for p in preds[b] if p in reachable]
            if not block_preds:
                new = {b}
            else:
                new = set.intersection(*(dom[p] for p in block_preds)) | {b}
            if new != dom[b]:
                dom[b] = new
                changed = True
    return dom


def postorder(fn: Function) -> list[BasicBlock]:
    """Blocks of ``fn`` in postorder (children before parents)."""
    out: list[BasicBlock] = []
    seen: set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        if block in seen:
            return
        seen.add(block)
        for succ in block.successors():
            visit(succ)
        out.append(block)

    visit(fn.entry)
    return out


def postdominators(fn: Function) -> dict[BasicBlock, set[BasicBlock]]:
    """Classic iterative postdominator analysis over a virtual exit.

    Returns, for each reachable block, the set of blocks that
    postdominate it (every path from the block to function exit passes
    through them), including itself.
    """
    reachable = reachable_blocks(fn)
    blocks_in_order = [b for b in fn.blocks if b in reachable]
    exits = [b for b in blocks_in_order if not b.successors()]
    pdom: dict[BasicBlock, set[BasicBlock]] = {
        b: set(blocks_in_order) for b in blocks_in_order
    }
    for e in exits:
        pdom[e] = {e}
    changed = True
    while changed:
        changed = False
        for b in reversed(blocks_in_order):
            if b in exits:
                continue
            succs = [s for s in b.successors() if s in reachable]
            if not succs:
                new = {b}
            else:
                new = set.intersection(*(pdom[s] for s in succs)) | {b}
            if new != pdom[b]:
                pdom[b] = new
                changed = True
    return pdom


def control_dependent_blocks(fn: Function) -> dict[BasicBlock, set[BasicBlock]]:
    """Control dependence via postdominators (Ferrante et al.).

    Block B is control dependent on branch A iff A has a successor S
    such that B postdominates S, while B does not postdominate A — i.e.
    A's decision determines whether B must execute.  Gist's backward
    slicing consumes this map.
    """
    pdom = postdominators(fn)
    result: dict[BasicBlock, set[BasicBlock]] = {b: set() for b in fn.blocks}
    for brancher in fn.blocks:
        if brancher not in pdom:
            continue
        succs = [s for s in brancher.successors() if s in pdom]
        if len(succs) < 2:
            continue
        for succ in succs:
            for b in pdom[succ]:
                if b not in pdom[brancher] or b is brancher:
                    result[b].add(brancher)
    return result


def module_block_count(module: Module) -> int:
    return sum(len(fn.blocks) for fn in module.functions.values())


def blocks(module: Module) -> Iterable[BasicBlock]:
    for fn in module.functions.values():
        yield from fn.blocks
