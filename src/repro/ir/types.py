"""IR type system.

The IR mirrors the slice of LLVM's type system that Lazy Diagnosis
consumes: integers, pointers, structs, arrays, functions, plus two opaque
runtime types (locks and thread handles) that the simulator gives special
semantics to.

Types are value objects: two structurally equal types compare equal and
hash equal, so they can key dictionaries (e.g. the type-based ranking
stage groups instructions by their operand's pointee type).  Named struct
types compare by name, which lets corpus programs define recursive
structures (a ``struct Node { next: ptr<Node> }``).

Layout: every scalar (int of any declared width, pointer, function
reference, thread handle, lock word) occupies one 8-byte word.  Struct
fields are laid out sequentially with no padding beyond that rule.  The
declared integer width still matters to type-based ranking (an ``i32*``
operand is a different type from an ``i64*``), matching the paper's
Figure 4 example where a ``Queue*`` outranks an ``i32*``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import IRTypeError

WORD_SIZE = 8
"""Size in bytes of every scalar slot in the simulated address space."""


class Type:
    """Base class for all IR types."""

    def size(self) -> int:
        """Size of a value of this type in bytes."""
        raise NotImplementedError

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_aggregate(self) -> bool:
        return isinstance(self, (StructType, ArrayType))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"


class VoidType(Type):
    """The type of instructions that produce no value."""

    def size(self) -> int:
        raise IRTypeError("void has no size")

    def __str__(self) -> str:
        return "void"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class IntType(Type):
    """An integer with a declared bit width (i1, i8, i32, i64, ...)."""

    def __init__(self, bits: int):
        if bits <= 0 or bits > 64:
            raise IRTypeError(f"unsupported integer width: {bits}")
        self.bits = bits

    def size(self) -> int:
        return WORD_SIZE

    def __str__(self) -> str:
        return f"i{self.bits}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))


class FloatType(Type):
    """A 64-bit floating point value."""

    def size(self) -> int:
        return WORD_SIZE

    def __str__(self) -> str:
        return "f64"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType)

    def __hash__(self) -> int:
        return hash("f64")


class LockType(Type):
    """An opaque mutex word.

    Deadlock diagnosis keys on pointers to values of this type: the
    failing operand of a deadlock is a ``ptr<lock>`` (paper §4.3).
    """

    def size(self) -> int:
        return WORD_SIZE

    def __str__(self) -> str:
        return "lock"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LockType)

    def __hash__(self) -> int:
        return hash("lock")


class CondType(Type):
    """An opaque condition-variable word.

    Waits are "naked" (no associated mutex hand-off): a ``condwait``
    blocks until a later ``condnotify`` on the same address.  A notify
    with no waiter is *lost* — exactly the semantics that make lost
    wakeups expressible as corpus bugs.
    """

    def size(self) -> int:
        return WORD_SIZE

    def __str__(self) -> str:
        return "cond"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CondType)

    def __hash__(self) -> int:
        return hash("cond")


class RwLockType(Type):
    """An opaque reader-writer lock word.

    Many readers or one writer; writers block behind any reader and
    vice versa.  Diagnosis treats rd/wr acquisition like ``lock`` and
    release like ``unlock``.
    """

    def size(self) -> int:
        return WORD_SIZE

    def __str__(self) -> str:
        return "rwlock"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RwLockType)

    def __hash__(self) -> int:
        return hash("rwlock")


class SemType(Type):
    """An opaque counting-semaphore word (``semwait`` = P, ``sempost`` = V)."""

    def size(self) -> int:
        return WORD_SIZE

    def __str__(self) -> str:
        return "sema"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SemType)

    def __hash__(self) -> int:
        return hash("sema")


class BarrierType(Type):
    """An opaque cyclic-barrier word for ``parties`` threads per phase."""

    def size(self) -> int:
        return WORD_SIZE

    def __str__(self) -> str:
        return "barrier"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BarrierType)

    def __hash__(self) -> int:
        return hash("barrier")


class ThreadType(Type):
    """An opaque thread handle produced by ``spawn`` and used by ``join``."""

    def size(self) -> int:
        return WORD_SIZE

    def __str__(self) -> str:
        return "thread"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ThreadType)

    def __hash__(self) -> int:
        return hash("thread")


class PointerType(Type):
    """A pointer to a value of ``pointee`` type."""

    def __init__(self, pointee: Type):
        if isinstance(pointee, VoidType):
            raise IRTypeError("use ptr<i8> instead of ptr<void>")
        self.pointee = pointee

    def size(self) -> int:
        return WORD_SIZE

    def __str__(self) -> str:
        return f"ptr<{self.pointee}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))


class StructField:
    """A named, typed field with a computed byte offset."""

    def __init__(self, name: str, ty: Type, offset: int):
        self.name = name
        self.ty = ty
        self.offset = offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<field {self.name}: {self.ty} @+{self.offset}>"


class StructType(Type):
    """A named aggregate with sequentially laid out fields.

    Struct types are nominal: equality and hashing use only the name, so
    a struct may contain pointers to itself.  The field list may be set
    after construction (``set_body``) to support such recursion.
    """

    def __init__(self, name: str, fields: Sequence[tuple[str, Type]] | None = None):
        if not name:
            raise IRTypeError("struct types must be named")
        self.name = name
        self.fields: list[StructField] = []
        self._size = 0
        self._sealed = False
        if fields is not None:
            self.set_body(fields)

    def set_body(self, fields: Iterable[tuple[str, Type]]) -> "StructType":
        if self._sealed:
            raise IRTypeError(f"struct {self.name} already has a body")
        offset = 0
        names: set[str] = set()
        for fname, fty in fields:
            if fname in names:
                raise IRTypeError(f"duplicate field {fname} in struct {self.name}")
            names.add(fname)
            self.fields.append(StructField(fname, fty, offset))
            offset += fty.size()
        self._size = offset
        self._sealed = True
        return self

    @property
    def is_opaque(self) -> bool:
        return not self._sealed

    def size(self) -> int:
        if not self._sealed:
            raise IRTypeError(f"struct {self.name} is opaque (no body)")
        return self._size

    def field(self, name: str) -> StructField:
        for f in self.fields:
            if f.name == name:
                return f
        raise IRTypeError(f"struct {self.name} has no field {name!r}")

    def field_index(self, name: str) -> int:
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        raise IRTypeError(f"struct {self.name} has no field {name!r}")

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))


class ArrayType(Type):
    """A fixed-length array of ``count`` elements of ``element`` type."""

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise IRTypeError(f"negative array length: {count}")
        self.element = element
        self.count = count

    def size(self) -> int:
        return self.element.size() * self.count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))


class FunctionType(Type):
    """The type of a function: return type plus parameter types."""

    def __init__(self, ret: Type, params: Sequence[Type]):
        self.ret = ret
        self.params = tuple(params)

    def size(self) -> int:
        return WORD_SIZE  # function references are word-sized

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"fn({params}) -> {self.ret}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.ret == self.ret
            and other.params == self.params
        )

    def __hash__(self) -> int:
        return hash(("fn", self.ret, self.params))


# Commonly used singleton-ish instances.  Types are value objects so it is
# fine to construct new ones; these exist for readability.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)
F64 = FloatType()
LOCK = LockType()
COND = CondType()
RWLOCK = RwLockType()
SEMA = SemType()
BARRIER = BarrierType()
THREAD = ThreadType()


def ptr(pointee: Type) -> PointerType:
    """Shorthand constructor for :class:`PointerType`."""
    return PointerType(pointee)


def pointee_of(ty: Type) -> Type:
    """Return the pointee of ``ty``, raising IRTypeError for non-pointers."""
    if not isinstance(ty, PointerType):
        raise IRTypeError(f"expected a pointer type, got {ty}")
    return ty.pointee
