"""IR instructions.

The instruction set is the subset of LLVM IR that Lazy Diagnosis's
analyses consume, plus the concurrency intrinsics the simulator executes
(`lock`, `unlock`, `spawn`, `join`) and a `delay` instruction that models
application work (parsing, I/O, network) at nanosecond granularity —
that is what creates the coarse inter-event gaps the paper's hypothesis
is about.

Instructions producing a result are SSA temporaries within their basic
block; all cross-block dataflow goes through `alloca` slots via
load/store, like clang -O0 output.  Each instruction gets a module-unique
integer ``uid`` when the module is finalized; the uid doubles as the
"program counter" used by trace snapshots, breakpoints, and diagnosis
reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import IRTypeError
from repro.ir.types import (
    I1,
    THREAD,
    VOID,
    ArrayType,
    BarrierType,
    CondType,
    FunctionType,
    IntType,
    LockType,
    PointerType,
    RwLockType,
    SemType,
    StructType,
    Type,
    pointee_of,
)
from repro.ir.values import FunctionRef, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.basicblock import BasicBlock


class SourceLoc:
    """A synthetic source location (file, line) attached to instructions.

    The corpus programs assign locations so diagnosis reports read like
    the paper's (``pbzip2.c:1048``).
    """

    __slots__ = ("file", "line")

    def __init__(self, file: str, line: int):
        self.file = file
        self.line = line

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLoc)
            and other.file == self.file
            and other.line == self.line
        )

    def __hash__(self) -> int:
        return hash((self.file, self.line))


class Instruction(Value):
    """Base class for all instructions."""

    opcode: str = "<abstract>"

    def __init__(self, ty: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(ty, name)
        self.operands: list[Value] = list(operands)
        self.parent: "BasicBlock | None" = None
        self.uid: int = -1  # assigned by Module.finalize()
        self.block_index: int = -1  # position within parent block (finalize)
        self.loc: SourceLoc | None = None

    # -- classification helpers used throughout the analyses ------------

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, CondBr, Ret))

    @property
    def is_memory_read(self) -> bool:
        return isinstance(self, Load)

    @property
    def is_memory_write(self) -> bool:
        return isinstance(self, Store)

    @property
    def is_memory_access(self) -> bool:
        return self.is_memory_read or self.is_memory_write

    @property
    def is_lock_op(self) -> bool:
        return isinstance(self, (Lock, Unlock))

    @property
    def is_allocation(self) -> bool:
        return isinstance(self, (Alloca, Malloc))

    def pointer_operand(self) -> Value | None:
        """The pointer this instruction dereferences, if any.

        This is the operand whose points-to set the diagnosis pipeline
        inspects: the address of a load/store, or the lock word of a
        lock/unlock.
        """
        if isinstance(self, Load):
            return self.operands[0]
        if isinstance(self, Store):
            return self.operands[1]
        if isinstance(self, (Lock, Unlock, Free)):
            return self.operands[0]
        if isinstance(self, _SyncOp):
            return self.operands[0]
        return None

    def describe(self) -> str:
        """One-line human description used in diagnosis reports."""
        where = f" at {self.loc}" if self.loc else ""
        return f"{self.opcode} (uid={self.uid}){where}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} uid={self.uid} {self.short()}>"


class Alloca(Instruction):
    """Reserve a stack slot for one value of ``allocated_type``.

    Executed once per function activation (slots are grouped into the
    frame at call time regardless of where the alloca appears).
    """

    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = ""):
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type


class Malloc(Instruction):
    """Allocate a heap object of ``allocated_type`` (times ``count``)."""

    opcode = "malloc"

    def __init__(self, allocated_type: Type, count: Value | None = None, name: str = ""):
        operands = [count] if count is not None else []
        super().__init__(PointerType(allocated_type), operands, name)
        self.allocated_type = allocated_type

    @property
    def count(self) -> Value | None:
        return self.operands[0] if self.operands else None


class Free(Instruction):
    """Release a heap object; subsequent access is a crash (dangling)."""

    opcode = "free"

    def __init__(self, pointer: Value):
        if not pointer.ty.is_pointer():
            raise IRTypeError(f"free of non-pointer {pointer.ty}")
        super().__init__(VOID, [pointer])

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Load(Instruction):
    """Read the value at ``pointer``; result type is the pointee type."""

    opcode = "load"

    def __init__(self, pointer: Value, name: str = ""):
        pointee = pointee_of(pointer.ty)
        if pointee.is_aggregate():
            raise IRTypeError("loads of whole aggregates are not supported")
        super().__init__(pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Write ``value`` to ``pointer``."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        pointee = pointee_of(pointer.ty)
        if pointee != value.ty:
            raise IRTypeError(
                f"store type mismatch: storing {value.ty} through ptr<{pointee}>"
            )
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class FieldAddr(Instruction):
    """Compute the address of a struct field (a restricted GEP)."""

    opcode = "fieldaddr"

    def __init__(self, pointer: Value, field_name: str, name: str = ""):
        base_ty = pointee_of(pointer.ty)
        if not isinstance(base_ty, StructType):
            raise IRTypeError(f"fieldaddr base must point to a struct, got {base_ty}")
        field = base_ty.field(field_name)
        super().__init__(PointerType(field.ty), [pointer], name)
        self.struct_type = base_ty
        self.field_name = field_name
        self.offset = field.offset

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class IndexAddr(Instruction):
    """Compute the address of an array element (pointer arithmetic).

    ``pointer`` may point at an array (indexes into it) or at a scalar
    (plain pointer arithmetic in element units), like a one-index GEP.
    """

    opcode = "indexaddr"

    def __init__(self, pointer: Value, index: Value, name: str = ""):
        base_ty = pointee_of(pointer.ty)
        if isinstance(base_ty, ArrayType):
            elem = base_ty.element
        else:
            elem = base_ty
        if not isinstance(index.ty, IntType):
            raise IRTypeError(f"index must be an integer, got {index.ty}")
        super().__init__(PointerType(elem), [pointer, index], name)
        self.element_type = elem

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


_BINOPS = {"add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr"}


class BinOp(Instruction):
    """Integer/float arithmetic; result has the left operand's type."""

    opcode = "binop"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in _BINOPS:
            raise IRTypeError(f"unknown binary op {op!r}")
        if lhs.ty != rhs.ty:
            raise IRTypeError(f"binop operand mismatch: {lhs.ty} vs {rhs.ty}")
        super().__init__(lhs.ty, [lhs, rhs], name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


_CMPOPS = {"eq", "ne", "lt", "le", "gt", "ge"}


class Cmp(Instruction):
    """Comparison producing an i1."""

    opcode = "cmp"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in _CMPOPS:
            raise IRTypeError(f"unknown comparison op {op!r}")
        if lhs.ty != rhs.ty:
            raise IRTypeError(f"cmp operand mismatch: {lhs.ty} vs {rhs.ty}")
        super().__init__(I1, [lhs, rhs], name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cast(Instruction):
    """Reinterpret a value as another word-sized type (bitcast).

    Casts are what create the type mismatches the paper's type-based
    ranking must tolerate: an ``i32*`` may actually refer to a ``Queue``
    object (§4.3).
    """

    opcode = "cast"

    def __init__(self, value: Value, to_type: Type, name: str = ""):
        if to_type.is_aggregate() or isinstance(to_type, (FunctionType,)):
            raise IRTypeError(f"cannot cast to {to_type}")
        super().__init__(to_type, [value], name)

    @property
    def value(self) -> Value:
        return self.operands[0]


class Br(Instruction):
    """Unconditional branch."""

    opcode = "br"

    def __init__(self, target: "BasicBlock"):
        super().__init__(VOID, [])
        self.target = target

    def successors(self) -> list["BasicBlock"]:
        return [self.target]


class CondBr(Instruction):
    """Conditional branch: the only instruction that emits TNT bits."""

    opcode = "cbr"

    def __init__(self, cond: Value, then_block: "BasicBlock", else_block: "BasicBlock"):
        if cond.ty != I1:
            raise IRTypeError(f"branch condition must be i1, got {cond.ty}")
        super().__init__(VOID, [cond])
        self.then_block = then_block
        self.else_block = else_block

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def successors(self) -> list["BasicBlock"]:
        return [self.then_block, self.else_block]


class Ret(Instruction):
    """Return from the current function."""

    opcode = "ret"

    def __init__(self, value: Value | None = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Value | None:
        return self.operands[0] if self.operands else None

    def successors(self) -> list["BasicBlock"]:
        return []


class Call(Instruction):
    """Direct (callee is a FunctionRef) or indirect (pointer) call."""

    opcode = "call"

    def __init__(self, callee: Value, args: Sequence[Value], name: str = ""):
        fn_ty = _callee_function_type(callee)
        if len(args) != len(fn_ty.params):
            raise IRTypeError(
                f"call arity mismatch: {len(args)} args for {len(fn_ty.params)} params"
            )
        for i, (arg, pty) in enumerate(zip(args, fn_ty.params)):
            if arg.ty != pty:
                raise IRTypeError(f"call arg {i} type mismatch: {arg.ty} vs {pty}")
        super().__init__(fn_ty.ret, [callee, *args], name)
        self.function_type = fn_ty

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> list[Value]:
        return self.operands[1:]

    @property
    def is_direct(self) -> bool:
        return isinstance(self.callee, FunctionRef)


def _callee_function_type(callee: Value) -> FunctionType:
    if isinstance(callee, FunctionRef):
        return callee.function.type
    ty = callee.ty
    if isinstance(ty, PointerType) and isinstance(ty.pointee, FunctionType):
        return ty.pointee
    if isinstance(ty, FunctionType):
        return ty
    raise IRTypeError(f"callee is not a function or function pointer: {ty}")


class LockInit(Instruction):
    """Initialize a mutex word."""

    opcode = "lockinit"

    def __init__(self, pointer: Value):
        _require_lock_pointer(pointer, "lockinit")
        super().__init__(VOID, [pointer])

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Lock(Instruction):
    """Acquire a mutex; blocks (and may deadlock) if held."""

    opcode = "lock"

    def __init__(self, pointer: Value):
        _require_lock_pointer(pointer, "lock")
        super().__init__(VOID, [pointer])

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Unlock(Instruction):
    """Release a mutex held by the current thread."""

    opcode = "unlock"

    def __init__(self, pointer: Value):
        _require_lock_pointer(pointer, "unlock")
        super().__init__(VOID, [pointer])

    @property
    def pointer(self) -> Value:
        return self.operands[0]


def _require_lock_pointer(pointer: Value, what: str) -> None:
    ty = pointer.ty
    if not (isinstance(ty, PointerType) and isinstance(ty.pointee, LockType)):
        raise IRTypeError(f"{what} operand must be ptr<lock>, got {ty}")


def _require_sync_pointer(pointer: Value, pointee_cls: type, what: str) -> None:
    ty = pointer.ty
    if not (isinstance(ty, PointerType) and isinstance(ty.pointee, pointee_cls)):
        want = pointee_cls().__str__()  # CondType() -> "cond", etc.
        raise IRTypeError(f"{what} operand must be ptr<{want}>, got {ty}")


class _SyncOp(Instruction):
    """Base for the sync-primitive intrinsics whose first operand is the
    primitive word's address (the pointer diagnosis inspects)."""

    _pointee_cls: type = Type

    def __init__(self, pointer: Value, extra: Sequence[Value] = ()):
        _require_sync_pointer(pointer, self._pointee_cls, self.opcode)
        super().__init__(VOID, [pointer, *extra])

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class CondInit(_SyncOp):
    """Initialize a condition-variable word (empty wait queue)."""

    opcode = "condinit"
    _pointee_cls = CondType


class CondWait(_SyncOp):
    """Block until a later ``condnotify`` on the same address.

    The wait is unconditional (no predicate re-check, no mutex): a
    notify that fires *before* the wait is lost, so programs that rely
    on signal delivery order contain a latent lost-wakeup hang.
    """

    opcode = "condwait"
    _pointee_cls = CondType


class CondNotify(_SyncOp):
    """Wake the longest-waiting thread blocked on this condition
    variable (FIFO); a no-op — the signal is dropped — if none waits."""

    opcode = "condnotify"
    _pointee_cls = CondType


class RwInit(_SyncOp):
    """Initialize a reader-writer lock word (free)."""

    opcode = "rwinit"
    _pointee_cls = RwLockType


class RwRdLock(_SyncOp):
    """Acquire in shared (reader) mode; blocks while a writer holds."""

    opcode = "rwrdlock"
    _pointee_cls = RwLockType


class RwWrLock(_SyncOp):
    """Acquire in exclusive (writer) mode; blocks while anyone holds."""

    opcode = "rwwrlock"
    _pointee_cls = RwLockType


class RwUnlock(_SyncOp):
    """Release whichever mode the current thread holds."""

    opcode = "rwunlock"
    _pointee_cls = RwLockType


class SemInit(_SyncOp):
    """Initialize a counting semaphore to ``count`` permits."""

    opcode = "seminit"
    _pointee_cls = SemType

    def __init__(self, pointer: Value, count: Value):
        if not isinstance(count.ty, IntType):
            raise IRTypeError(f"seminit count must be an integer, got {count.ty}")
        super().__init__(pointer, [count])

    @property
    def count(self) -> Value:
        return self.operands[1]


class SemWait(_SyncOp):
    """P: take one permit, blocking while the count is zero."""

    opcode = "semwait"
    _pointee_cls = SemType


class SemPost(_SyncOp):
    """V: return one permit, waking the longest-blocked waiter if any."""

    opcode = "sempost"
    _pointee_cls = SemType


class BarrierInit(_SyncOp):
    """Initialize a cyclic barrier for ``parties`` threads per phase."""

    opcode = "barrierinit"
    _pointee_cls = BarrierType

    def __init__(self, pointer: Value, parties: Value):
        if not isinstance(parties.ty, IntType):
            raise IRTypeError(
                f"barrierinit parties must be an integer, got {parties.ty}"
            )
        super().__init__(pointer, [parties])

    @property
    def parties(self) -> Value:
        return self.operands[1]


class BarrierWait(_SyncOp):
    """Block until ``parties`` threads have arrived, then release all."""

    opcode = "barrierwait"
    _pointee_cls = BarrierType


class Spawn(Instruction):
    """Start a new thread running ``callee(args...)``; yields a handle."""

    opcode = "spawn"

    def __init__(self, callee: Value, args: Sequence[Value], name: str = ""):
        fn_ty = _callee_function_type(callee)
        if len(args) != len(fn_ty.params):
            raise IRTypeError(
                f"spawn arity mismatch: {len(args)} args for {len(fn_ty.params)} params"
            )
        super().__init__(THREAD, [callee, *args], name)
        self.function_type = fn_ty

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> list[Value]:
        return self.operands[1:]


class Join(Instruction):
    """Wait for the thread behind ``handle`` to finish."""

    opcode = "join"

    def __init__(self, handle: Value):
        if handle.ty != THREAD:
            raise IRTypeError(f"join operand must be a thread handle, got {handle.ty}")
        super().__init__(VOID, [handle])

    @property
    def handle(self) -> Value:
        return self.operands[0]


class Delay(Instruction):
    """Advance the thread's virtual time by ``duration`` nanoseconds.

    This models the application work between target events (request
    parsing, disk/network I/O, computation) that makes real concurrency
    bugs *coarsely* interleaved.  The duration operand is usually loaded
    from a workload-generated table, so different executions get
    different inter-event gaps.
    """

    opcode = "delay"

    def __init__(self, duration: Value):
        if not isinstance(duration.ty, IntType):
            raise IRTypeError(f"delay duration must be an integer, got {duration.ty}")
        super().__init__(VOID, [duration])

    @property
    def duration(self) -> Value:
        return self.operands[0]


class Assert(Instruction):
    """Crash the thread if ``cond`` is false.

    This is the paper's "custom mode of failure" (§7): a developer
    assertion that lets Snorlax treat a semantic violation as fail-stop.
    """

    opcode = "assert"

    def __init__(self, cond: Value, message: str = "assertion failed"):
        if cond.ty != I1:
            raise IRTypeError(f"assert condition must be i1, got {cond.ty}")
        super().__init__(VOID, [cond])
        self.message = message

    @property
    def cond(self) -> Value:
        return self.operands[0]
