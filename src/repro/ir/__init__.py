"""The IR substrate: an LLVM-like typed intermediate representation.

Public surface::

    from repro.ir import Module, IRBuilder, parse_module, print_module
    from repro.ir import types  # I64, ptr(...), etc.
"""

from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Assert,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    Delay,
    FieldAddr,
    Free,
    IndexAddr,
    Instruction,
    Join,
    Load,
    Lock,
    LockInit,
    Malloc,
    Ret,
    SourceLoc,
    Spawn,
    Store,
    Unlock,
)
from repro.ir.module import Module
from repro.ir.parser import parse_module
from repro.ir.printer import print_function, print_instruction, print_module
from repro.ir.types import (
    F64,
    I1,
    I8,
    I32,
    I64,
    LOCK,
    THREAD,
    VOID,
    WORD_SIZE,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    LockType,
    PointerType,
    StructType,
    ThreadType,
    Type,
    VoidType,
    ptr,
)
from repro.ir.values import (
    Argument,
    Constant,
    FunctionRef,
    GlobalVariable,
    NullPointer,
    Value,
)
from repro.ir.verifier import verify_module

__all__ = [
    "BasicBlock",
    "IRBuilder",
    "Function",
    "Module",
    "parse_module",
    "print_module",
    "print_function",
    "print_instruction",
    "verify_module",
    # instructions
    "Alloca",
    "Assert",
    "BinOp",
    "Br",
    "Call",
    "Cast",
    "Cmp",
    "CondBr",
    "Delay",
    "FieldAddr",
    "Free",
    "IndexAddr",
    "Instruction",
    "Join",
    "Load",
    "Lock",
    "LockInit",
    "Malloc",
    "Ret",
    "SourceLoc",
    "Spawn",
    "Store",
    "Unlock",
    # values
    "Argument",
    "Constant",
    "FunctionRef",
    "GlobalVariable",
    "NullPointer",
    "Value",
    # types
    "F64",
    "I1",
    "I8",
    "I32",
    "I64",
    "LOCK",
    "THREAD",
    "VOID",
    "WORD_SIZE",
    "ArrayType",
    "FloatType",
    "FunctionType",
    "IntType",
    "LockType",
    "PointerType",
    "StructType",
    "ThreadType",
    "Type",
    "VoidType",
    "ptr",
]
