"""Functions: named parameter lists plus a CFG of basic blocks."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Alloca, Instruction
from repro.ir.types import FunctionType, Type
from repro.ir.values import Argument


class Function:
    """A function definition.

    The first block added is the entry block.  ``allocas()`` enumerates
    every stack slot in the body; the simulator materializes all of them
    when a frame is pushed (clang-style), so an alloca inside a loop still
    denotes a single slot per activation.
    """

    def __init__(self, name: str, ret: Type, params: Sequence[tuple[str, Type]]):
        self.name = name
        self.type = FunctionType(ret, [ty for _, ty in params])
        self.params: list[Argument] = [
            Argument(pname, pty, self, i) for i, (pname, pty) in enumerate(params)
        ]
        self.blocks: list[BasicBlock] = []
        self._block_names: set[str] = set()

    @property
    def return_type(self) -> Type:
        return self.type.ret

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str) -> BasicBlock:
        if name in self._block_names:
            raise IRError(f"duplicate block name {name!r} in function {self.name}")
        self._block_names.add(name)
        block = BasicBlock(name, self)
        self.blocks.append(block)
        return block

    def block(self, name: str) -> BasicBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise IRError(f"function {self.name} has no block {name!r}")

    def param(self, name: str) -> Argument:
        for p in self.params:
            if p.name == name:
                return p
        raise IRError(f"function {self.name} has no parameter {name!r}")

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def allocas(self) -> list[Alloca]:
        return [i for i in self.instructions() if isinstance(i, Alloca)]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function {self.name} blocks={len(self.blocks)}>"
