"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import IRError
from repro.ir.instructions import Instruction

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import Function


class BasicBlock:
    """A contiguous instruction sequence with no internal branches.

    Blocks get a module-unique ``uid`` at finalization; the PT-like trace
    encoder uses block uids as the "addresses" carried by TIP packets.
    """

    def __init__(self, name: str, function: "Function | None" = None):
        self.name = name
        self.function = function
        self.instructions: list[Instruction] = []
        self.uid: int = -1  # assigned by Module.finalize()

    def append(self, instr: Instruction) -> Instruction:
        if self.is_terminated:
            raise IRError(
                f"block {self.label()} already ends in "
                f"{self.terminator.opcode}; cannot append {instr.opcode}"
            )
        instr.parent = self
        self.instructions.append(instr)
        return instr

    @property
    def terminator(self) -> Instruction:
        if not self.instructions or not self.instructions[-1].is_terminator:
            raise IRError(f"block {self.label()} has no terminator")
        return self.instructions[-1]

    @property
    def is_terminated(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].is_terminator

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return term.successors()  # type: ignore[attr-defined]

    def label(self) -> str:
        fn = self.function.name if self.function else "?"
        return f"{fn}.{self.name}"

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.label()} uid={self.uid} n={len(self.instructions)}>"
