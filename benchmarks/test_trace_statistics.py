"""§6 trace statistics.

The paper reports that a 64 KB per-thread ring buffer held on average
6764 control events and 6695 timing packets per thread, that timing
packets occupied ~49% of the buffer, and that the longest gap between
timing packets (65 us) stayed below the 91 us minimum inter-event gap —
the condition that makes the coarse timing sufficient.
"""

import statistics

import pytest

from repro.bench import client_for, render_table
from repro.corpus import snorlax_bugs


@pytest.fixture(scope="module")
def trace_stats():
    per_bug = {}
    for spec in snorlax_bugs():
        client = client_for(spec, tracing=True)
        run = client.find_runs(True, 1)[0]
        stats = run.driver.stats()
        # longest gap between timing packets while a thread was running
        # (blocked spans are context switches, bracketed by exact TSCs)
        max_gap_us = max(s.max_timing_gap_ns for s in stats.values()) / 1000.0
        per_bug[spec.bug_id] = (stats, max_gap_us)
    return per_bug


def test_trace_statistics(benchmark, trace_stats, emit):
    spec = snorlax_bugs()[0]
    client = client_for(spec, tracing=True)
    benchmark.pedantic(lambda: client.run_once(0), iterations=1, rounds=3)
    rows = []
    control_counts, timing_counts, fractions, gaps = [], [], [], []
    for bug_id, (stats, max_gap_us) in trace_stats.items():
        ctrl = statistics.fmean(s.control_packets for s in stats.values())
        tim = statistics.fmean(s.timing_packets for s in stats.values())
        frac = statistics.fmean(s.timing_fraction() for s in stats.values())
        control_counts.append(ctrl)
        timing_counts.append(tim)
        fractions.append(frac)
        gaps.append(max_gap_us)
        rows.append(
            (bug_id, f"{ctrl:.0f}", f"{tim:.0f}", f"{100*frac:.0f}%", f"{max_gap_us:.1f}")
        )
    rows.append(
        ("AVERAGE (paper: 6764 / 6695 / 49% / <=65us)",
         f"{statistics.fmean(control_counts):.0f}",
         f"{statistics.fmean(timing_counts):.0f}",
         f"{100*statistics.fmean(fractions):.0f}%",
         f"max {max(gaps):.1f}"))
    emit(
        "trace_stats",
        render_table(
            "Trace statistics per thread (failing run of each bug)",
            ["bug", "control pkts", "timing pkts", "timing bytes", "max timing gap us"],
            rows,
        ),
    )
    # the CIH safety condition: timing packets always arrive more often
    # than the minimum 91 us between target events
    assert max(gaps) < 91.0, f"timing gap {max(gaps):.1f}us exceeds the 91us floor"
    # timing packets dominate byte volume on delay-heavy workloads, as in
    # the paper (49% of the buffer)
    assert statistics.fmean(fractions) > 0.25
    assert statistics.fmean(timing_counts) > 50
