"""Ablation: ring-buffer size and timing-packet period (§5, §7).

Two trace-configuration knobs gate Lazy Diagnosis:

* the ring buffer bounds how much history survives to the snapshot (the
  paper's 64 KB sufficed for every bug; §7 discusses when it would not);
* the MTC period bounds the partial order's resolution — once it grows
  past the minimum inter-event gap (91 us), cross-thread ordering
  dissolves and with it the ability to rank interleavings.
"""

import pytest

from repro.bench import client_for
from repro.bench.tables import render_table
from repro.corpus import bug
from repro.core import PipelineConfig
from repro.core.pipeline import LazyDiagnosis
from repro.pt import KB, TraceConfig
from repro.runtime import SnorlaxServer

BUG = "pbzip2-n/a"


def _diagnose_with(trace_config: TraceConfig, mtc_period_ns: int):
    spec = bug(BUG)
    module = spec.module()
    client = client_for(spec, tracing=True, trace_config=trace_config)
    failing = client.find_runs(True, 1)[0]
    server = SnorlaxServer(
        module, config=PipelineConfig(mtc_period_ns=mtc_period_ns)
    )
    report = server.diagnose(failing, client).report
    truth = spec.ground_truth.resolve(module)
    return report, report.ordered_target_uids() == truth


def test_ablation_buffer_and_timing(benchmark, emit):
    benchmark.pedantic(
        lambda: _diagnose_with(TraceConfig(), 4096), iterations=1, rounds=1
    )
    rows = []
    # buffer sweep at the default timing period
    for size_kb in (8, 64, 256):
        cfg = TraceConfig(buffer_size=size_kb * KB)
        report, exact = _diagnose_with(cfg, 4096)
        rows.append(
            (f"{size_kb} KB buffer, 4.1us MTC", "yes" if exact else "NO",
             f"{report.root_cause.f1:.2f}" if report.root_cause else "-")
        )
        assert exact, f"{size_kb} KB buffer should suffice for this bug"
    # timing-period sweep at the default buffer: past the ~91us minimum
    # gap the partial order can no longer separate the target events
    for period_us, expect_exact in ((4.096, True), (32.768, True)):
        cfg = TraceConfig(mtc_period_ns=int(period_us * 1000))
        report, exact = _diagnose_with(cfg, int(period_us * 1000))
        rows.append(
            (f"64 KB buffer, {period_us}us MTC", "yes" if exact else "NO",
             f"{report.root_cause.f1:.2f}" if report.root_cause else "-")
        )
        if expect_exact:
            assert exact, f"{period_us}us period should still order events"
    emit(
        "ablation_trace_config",
        render_table(
            "Ablation: trace configuration vs diagnosis quality (pbzip2)",
            ["configuration", "exact diagnosis", "top F1"],
            rows,
        ),
    )
