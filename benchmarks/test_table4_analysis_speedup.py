"""Table 4: server-side analysis time per trace and the speedup of the
scope-restricted hybrid analysis over a whole-program static analysis.

The paper reports 2.5 s average per-trace analysis and a geometric-mean
speedup of 24x, larger for larger programs (the trace is a fixed-size
window; the program is not).  We time both analyses on one
representative bug per system and assert the shape: hybrid always wins,
and the biggest system's speedup exceeds the smallest's.
"""

import math
import statistics

import pytest

from repro.baselines import speedup_vs_hybrid
from repro.bench import client_for, diagnosis_span_tree, render_table
from repro.corpus import profile, snorlax_bugs
from repro.core.points_to import PointsToAnalysis


def _executed_set(spec):
    client = client_for(spec, tracing=True)
    run = client.find_runs(True, 1)[0]
    snap = run.snapshot
    traces = snap.decode(spec.module())
    uids = set()
    for t in traces.values():
        uids |= t.executed_uids
    return uids


@pytest.fixture(scope="module")
def speedups():
    per_system = {}
    for spec in snorlax_bugs():
        if spec.system in per_system:
            continue
        executed = _executed_set(spec)
        per_system[spec.system] = (spec, speedup_vs_hybrid(spec.module(), executed))
    return per_system


def test_table4_speedups(benchmark, speedups, emit):
    # benchmark the hybrid analysis itself (the per-trace server cost)
    spec, row0 = next(iter(speedups.values()))
    executed = _executed_set(spec)
    benchmark.pedantic(
        lambda: PointsToAnalysis(spec.module(), executed).run(),
        iterations=1,
        rounds=5,
    )
    rows = []
    for system, (spec_, r) in sorted(
        speedups.items(), key=lambda kv: -kv[1][1]["instructions_total"]
    ):
        rows.append(
            (system, f"{profile(system).kloc} KLOC", r["instructions_total"],
             r["instructions_hybrid"], f"{r['whole_seconds']*1000:.1f}",
             f"{r['hybrid_seconds']*1000:.1f}", f"{r['speedup']:.1f}x")
        )
    geomean = math.exp(
        statistics.fmean(math.log(r["speedup"]) for _, r in speedups.values())
    )
    rows.append(("GEOMEAN", "", "", "", "", "", f"{geomean:.1f}x (paper: 24x)"))
    text = render_table(
        "Table 4: hybrid (scope-restricted) vs whole-program analysis",
        ["system", "real size", "instrs", "analyzed", "whole ms", "hybrid ms", "speedup"],
        rows,
    )
    # where the hybrid time goes: one full diagnosis of the representative
    # bug with tracing on, so a stage's share of the time is visible in CI
    text += (
        f"\n\nspan tree (one diagnosis of {spec.bug_id}, tracing on):\n"
        + diagnosis_span_tree(spec)
    )
    emit("table4", text)
    assert len(speedups) == 7  # the evaluation's 7 C/C++ systems
    for system, (_, r) in speedups.items():
        assert r["speedup"] > 1.0, f"{system}: hybrid not faster"
    # larger programs benefit more (paper: "speedup is greater for
    # larger programs")
    by_size = sorted(speedups.items(), key=lambda kv: kv[1][1]["instructions_total"])
    assert by_size[-1][1][1]["speedup"] > by_size[0][1][1]["speedup"]
    assert geomean >= 3.0
