"""Table 2: average time elapsed between the two target events of each
order violation (dT of Figure 1b), with standard deviations, in us."""

import pytest

from repro.bench import measure_cih, render_table
from repro.corpus import table_bugs

RUNS = 10


@pytest.fixture(scope="module")
def measurements():
    return [measure_cih(spec, runs=RUNS) for spec in table_bugs(2)]


def test_table2_order_violation_gaps(benchmark, measurements, emit):
    spec = table_bugs(2)[0]
    benchmark.pedantic(lambda: measure_cih(spec, runs=1), iterations=1, rounds=3)
    rows = [
        (m.system, m.bug_id, f"{m.mean_us(0):.0f}", f"{m.std_us(0):.0f}",
         f"{m.min_us():.0f}", m.runs_needed)
        for m in measurements
    ]
    emit(
        "table2",
        render_table(
            "Table 2: order violations -- dT between target events (us)",
            ["system", "bug", "dT avg", "dT std", "min", "execs to reproduce x10"],
            rows,
        ),
    )
    assert len(measurements) == 18
    for m in measurements:
        assert len(m.gaps_ns) == RUNS
        assert m.min_us() >= 91, f"{m.bug_id}: gap below the paper's 91 us floor"
        assert 100 <= m.mean_us(0) <= 4300, f"{m.bug_id}: average outside band"
