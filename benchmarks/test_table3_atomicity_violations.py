"""Table 3: average times elapsed for atomicity violations (dT1 between
first and second access, dT2 between second and third; Figure 1c)."""

import pytest

from repro.bench import measure_cih, render_table
from repro.corpus import table_bugs

RUNS = 10


@pytest.fixture(scope="module")
def measurements():
    return [measure_cih(spec, runs=RUNS) for spec in table_bugs(3)]


def test_table3_atomicity_gaps(benchmark, measurements, emit):
    spec = table_bugs(3)[0]
    benchmark.pedantic(lambda: measure_cih(spec, runs=1), iterations=1, rounds=3)
    rows = [
        (m.system, m.bug_id,
         f"{m.mean_us(0):.0f}", f"{m.std_us(0):.0f}",
         f"{m.mean_us(1):.0f}", f"{m.std_us(1):.0f}",
         f"{m.min_us():.0f}")
        for m in measurements
    ]
    emit(
        "table3",
        render_table(
            "Table 3: atomicity violations -- dT1, dT2 between target events (us)",
            ["system", "bug", "dT1 avg", "dT1 std", "dT2 avg", "dT2 std", "min"],
            rows,
        ),
    )
    assert len(measurements) == 27
    for m in measurements:
        assert len(m.gaps_ns) == RUNS
        assert m.n_gaps == 2, f"{m.bug_id}: atomicity bugs have two gaps"
        assert m.min_us() >= 91, f"{m.bug_id}: gap below the paper's 91 us floor"
        for k in (0, 1):
            assert 100 <= m.mean_us(k) <= 4800, f"{m.bug_id}: dT{k+1} outside band"
