"""Figure 9: overhead scalability with application thread count.

The paper doubles threads from 2 to 32: Snorlax grows 0.87% -> 1.98%
(per-thread trace buffers), while Gist's blocking instrumentation grows
3.14% -> 38.9%.  Shape assertions: Snorlax stays low and grows mildly;
Gist starts higher and blows up by an order of magnitude; at 32 threads
Gist is several times worse than Snorlax.
"""

import pytest

from repro.bench import measure_scalability_point, render_table

THREADS = (2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def sweep():
    return [measure_scalability_point(n) for n in THREADS]


def test_figure9_scalability(benchmark, sweep, emit):
    benchmark.pedantic(
        lambda: measure_scalability_point(2, seeds=(1,)), iterations=1, rounds=3
    )
    rows = [
        (p.threads, f"{p.snorlax_percent:.2f}", f"{p.gist_percent:.2f}")
        for p in sweep
    ]
    emit(
        "figure9",
        render_table(
            "Figure 9: overhead vs thread count "
            "(paper: Snorlax 0.87->1.98%, Gist 3.14->38.9%)",
            ["threads", "Snorlax %", "Gist %"],
            rows,
        ),
    )
    first, last = sweep[0], sweep[-1]
    # Snorlax: low everywhere, modest growth
    for p in sweep:
        assert p.snorlax_percent < 5.0, f"Snorlax {p.snorlax_percent:.2f}% @ {p.threads}"
    assert last.snorlax_percent > first.snorlax_percent  # per-thread buffers cost
    assert last.snorlax_percent / first.snorlax_percent < 6.0
    # Gist: starts higher, grows by ~an order of magnitude
    assert first.gist_percent > first.snorlax_percent
    assert last.gist_percent / first.gist_percent > 4.0
    assert last.gist_percent > 4.0 * last.snorlax_percent
    # monotone growth for Gist
    assert all(a.gist_percent <= b.gist_percent for a, b in zip(sweep, sweep[1:]))
