"""§6.3 diagnosis latency: Snorlax vs Gist.

Snorlax diagnoses after a single failure (always-on tracing); Gist
needs the failure to recur while its iteratively-refined slice is
monitored — 3.7 recurrences on average in its paper — and monitors one
bug per execution, so tracking B bugs multiplies its latency by B
(paper example: Chromium's 684 open race bugs -> 2523x vs Snorlax).
"""

import statistics

import pytest

from repro.baselines import GistDiagnoser, SpaceSampling
from repro.bench import render_table
from repro.corpus import snorlax_bugs

CHROMIUM_OPEN_RACES = 684


@pytest.fixture(scope="module")
def gist_results(accuracy_outcomes):
    results = {}
    for spec in snorlax_bugs():
        module = spec.module()
        truth = spec.ground_truth.resolve(module)
        # Gist slices backward from the *failing* instruction (the crash
        # PC), which the accuracy runs already located.
        failing_uid = accuracy_outcomes[spec.bug_id].report.failing_uid
        diagnoser = GistDiagnoser(module)
        results[spec.bug_id] = diagnoser.diagnose(failing_uid, truth)
    return results


def test_latency_comparison(benchmark, gist_results, accuracy_outcomes, emit):
    spec = snorlax_bugs()[0]
    module = spec.module()
    truth = spec.ground_truth.resolve(module)
    failing_uid = accuracy_outcomes[spec.bug_id].report.failing_uid
    diagnoser = GistDiagnoser(module)
    benchmark.pedantic(
        lambda: diagnoser.diagnose(failing_uid, truth), iterations=1, rounds=3
    )
    rows = []
    recurrences = []
    for spec in snorlax_bugs():
        r = gist_results[spec.bug_id]
        recurrences.append(r.recurrences_needed)
        rows.append(
            (spec.bug_id, 1, r.recurrences_needed,
             f"{r.recurrences_needed}x", r.final_monitored)
        )
    avg = statistics.fmean(recurrences)
    sampling = SpaceSampling(CHROMIUM_OPEN_RACES)
    chromium_factor = sampling.expected_latency_factor(avg)
    rows.append(
        ("AVERAGE", 1, f"{avg:.1f} (paper: 3.7)",
         f"{avg:.1f}x", ""))
    rows.append(
        (f"with {CHROMIUM_OPEN_RACES} bugs tracked (space sampling)", 1,
         f"{chromium_factor:.0f}", f"{chromium_factor:.0f}x (paper: 2523x)", ""))
    emit(
        "latency",
        render_table(
            "§6.3 diagnosis latency: failures needed before diagnosis",
            ["bug", "Snorlax", "Gist recurrences", "Gist/Snorlax", "Gist monitored instrs"],
            rows,
        ),
    )
    for bug_id, r in gist_results.items():
        assert r.diagnosed, f"{bug_id}: Gist never covered the targets"
        assert r.recurrences_needed >= 2, f"{bug_id}: Gist can't win on latency"
    # the paper's headline factors
    assert 2.0 <= avg <= 8.0
    assert chromium_factor >= 1000  # paper: 2523x for Chromium
