"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures,
printing it to stdout and appending it to ``benchmarks/out/`` so
EXPERIMENTS.md can cite the exact artifacts.  Expensive corpus-wide
measurements are cached per session.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def emit(out_dir):
    """Print a rendered table and persist it for EXPERIMENTS.md."""

    def _emit(name: str, text: str) -> None:
        print("\n" + text)
        (out_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def accuracy_outcomes():
    """§6.1 accuracy runs for the 11 Snorlax-eval bugs (cached)."""
    from repro.bench import run_accuracy
    from repro.corpus import snorlax_bugs

    return {spec.bug_id: run_accuracy(spec) for spec in snorlax_bugs()}
