"""§6.1 accuracy: Snorlax diagnoses every evaluated bug with 100%
accuracy from a single failure plus 10 successful traces.

For each of the 11 C/C++ evaluation bugs: one failing execution is
found by repetition, the server collects successful traces at the
failure PC, Lazy Diagnosis runs, and the diagnosed pattern is compared
against the developer-verified ground truth (exact events, exact order).
Ordering accuracy A_O (normalized Kendall tau, §6.1) must be 100% and
the root-cause pattern must be the unique top-F1 pattern with F1 = 1.
"""

from repro.bench import render_table, run_accuracy
from repro.corpus import snorlax_bugs


def test_accuracy_all_bugs(benchmark, accuracy_outcomes, emit):
    spec = next(s for s in snorlax_bugs() if s.bug_id == "pbzip2-n/a")
    benchmark.pedantic(lambda: run_accuracy(spec), iterations=1, rounds=3)
    rows = []
    for spec in snorlax_bugs():
        o = accuracy_outcomes[spec.bug_id]
        rows.append(
            (spec.system, spec.bug_id, o.bug_kind, f"{o.f1:.2f}",
             "yes" if o.unambiguous else "NO",
             f"{o.ordering_accuracy:.0f}%", "yes" if o.exact else "NO")
        )
    emit(
        "accuracy",
        render_table(
            "§6.1 accuracy: 11 evaluation bugs (paper: 100% accuracy, A_O = 100%)",
            ["system", "bug", "diagnosed kind", "F1", "unambiguous", "A_O", "exact"],
            rows,
        ),
    )
    assert len(accuracy_outcomes) == 11
    for bug_id, o in accuracy_outcomes.items():
        assert o.diagnosed, f"{bug_id}: no diagnosis"
        assert o.exact, f"{bug_id}: diagnosed events differ from ground truth"
        assert o.f1 == 1.0, f"{bug_id}: root cause F1 {o.f1} != 1.0"
        assert o.unambiguous, f"{bug_id}: tied top patterns"
        assert o.ordering_accuracy == 100.0, f"{bug_id}: A_O {o.ordering_accuracy}"
