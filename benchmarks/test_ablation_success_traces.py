"""Ablation: how many successful traces does statistical diagnosis need?

Snorlax caps successful traces at 10x the failing ones, "an upper limit
we empirically determined to be sufficient for full root cause
diagnosis accuracy" (§5).  This bench repeats the determination: as the
number of successful traces grows, satellite patterns (present in the
failing run but also benign) lose F1 until only the root cause remains
at 1.0 and the diagnosis becomes unambiguous.
"""

import pytest

from repro.bench import client_for, render_table
from repro.core import LazyDiagnosis
from repro.corpus import bug
from repro.runtime import SnorlaxServer

BUG = "memcached-127"
COUNTS = (0, 1, 3, 10)


@pytest.fixture(scope="module")
def sweep():
    spec = bug(BUG)
    module = spec.module()
    client = client_for(spec, tracing=True)
    failing = client.find_runs(True, 1)[0]
    server = SnorlaxServer(module, success_traces_wanted=max(COUNTS))
    failing_sample = server.sample_from_run("failure", failing)
    successes = server.collect_successful_traces(
        client, failing.failure.failing_uid, 10_000
    )
    truth = spec.ground_truth.resolve(module)
    rows = []
    for count in COUNTS:
        report = LazyDiagnosis(module).diagnose(
            [failing_sample], successes[:count]
        )
        top = report.ranked_patterns[0] if report.ranked_patterns else None
        tied_at_top = sum(
            1 for p in report.ranked_patterns if top and p.f1 == top.f1
        )
        rows.append(
            {
                "count": count,
                "exact": report.ordered_target_uids() == truth,
                "unambiguous": report.unambiguous,
                "tied_at_top": tied_at_top,
            }
        )
    return rows


def test_ablation_success_trace_count(benchmark, sweep, emit):
    benchmark.pedantic(lambda: len(sweep), iterations=1, rounds=1)
    emit(
        "ablation_success_traces",
        render_table(
            f"Ablation: successful traces vs diagnosis quality ({BUG})",
            ["success traces", "exact diagnosis", "unambiguous", "patterns tied at top F1"],
            [
                (r["count"], "yes" if r["exact"] else "NO",
                 "yes" if r["unambiguous"] else "NO", r["tied_at_top"])
                for r in sweep
            ],
        ),
    )
    # with zero successful traces everything in the failing run ties at
    # F1 = 1: the statistics cannot discriminate yet
    assert sweep[0]["tied_at_top"] > 1
    # at the paper's 10x cap the diagnosis is exact and unambiguous
    final = sweep[-1]
    assert final["exact"] and final["unambiguous"]
    # ambiguity never increases as evidence accumulates
    ties = [r["tied_at_top"] for r in sweep]
    assert all(a >= b for a, b in zip(ties, ties[1:]))
