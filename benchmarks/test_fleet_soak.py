"""Always-on fleet soak: hours of simulated monitoring, flat memory.

Not a paper figure — this proves the repo's deployment layer can run
*continuously*.  A compressed clock (both the server's detector clock
and every monitor loop's timebase are injected) drives ≥1 hour of
simulated fleet time through a few real seconds:

* two healthy monitored endpoints stream heartbeats + sampled
  executions; the anomaly detector trips on the bug's first failing
  sample and the server diagnoses it unprompted;
* one endpoint goes silent mid-soak (a crashed process), is evicted by
  the heartbeat reaper, and is re-admitted when it comes back;
* one flaky endpoint sends heartbeats through a deterministic
  corruption plan — every mangled frame costs it the connection and it
  reconnects, over and over.

The acceptance gates: the anomaly-triggered digest is byte-identical
to the on-demand in-process diagnosis, the evidence graph is queryable
and self-consistent, exactly one stale eviction happened, nobody is
stale at the end, and traced memory is flat across the back half of
the soak (the timeline deque, detector state, and evidence index are
all bounded).

``SOAK_SIM_SECONDS`` scales the simulated duration (CI smoke uses 300;
the default is a full simulated hour).
"""

import gc
import os
import threading
import time
import tracemalloc

import pytest

from repro.fleet import (
    EwmaAnomalyDetector,
    FaultPlan,
    FleetAgent,
    FleetServer,
    MonitorLoop,
    report_digest,
)
from repro.fleet.shard import signature_for_failure
from repro.ir import parse_module
from repro.provenance import EvidenceGraph, report_key
from repro.runtime import SnorlaxClient, SnorlaxServer

from tests.runtime.test_client_server import SRC, _workload

SIM_SECONDS = int(os.environ.get("SOAK_SIM_SECONDS", "3600"))
HEARTBEAT_S = 5.0  # simulated
SAMPLE_S = 10.0  # simulated
TIMEOUT_S = 30.0  # simulated: eviction threshold
SUCCESS_TRACES = 4
MEM_GROWTH_LIMIT = 512 * 1024  # bytes across the soak's back half


class _Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def _monitor(agent, clock, **kw):
    kw.setdefault("heartbeat_interval_s", HEARTBEAT_S)
    kw.setdefault("sample_interval_s", SAMPLE_S)
    kw.setdefault("drain_timeout_s", 0.001)
    return MonitorLoop(agent, clock=clock, **kw)


@pytest.fixture(scope="module")
def soak():
    module = parse_module(SRC)
    clock = _Clock()
    server = FleetServer(
        module_resolver=lambda bug_id: module,
        workers=2,
        success_traces_wanted=SUCCESS_TRACES,
        heartbeat_timeout_s=TIMEOUT_S,
        prune_interval_s=0.02,
        anomaly_detector=EwmaAnomalyDetector(
            alpha=0.5, failure_threshold=0.5, min_observations=1, window_s=1e9
        ),
        clock=clock,
        trace_reply_timeout=5.0,
    )
    host, port = server.start()
    stop = threading.Event()

    def _agent(agent_id, bug_id, **kw):
        agent = FleetAgent(agent_id, bug_id, module, _workload, host, port, **kw)
        agent.connect()
        return agent

    agents = {
        "clean-0": _agent("clean-0", "custom-readbeforeinit"),
        "clean-1": _agent("clean-1", "custom-readbeforeinit"),
        "silent-0": _agent("silent-0", "custom-readbeforeinit"),
        # heartbeat-only (its sample timer never fires inside the soak)
        # through a corruption plan: each mangled frame kills the conn
        "flaky-0": _agent(
            "flaky-0",
            "soak-flaky",
            fault_engine=FaultPlan(seed=7, corrupt_rate=0.05).engine("flaky-0"),
            backoff_base_s=0.001,
            backoff_cap_s=0.01,
        ),
    }
    loops = {
        "clean-0": _monitor(agents["clean-0"], clock),
        "clean-1": _monitor(agents["clean-1"], clock),
        "silent-0": _monitor(agents["silent-0"], clock),
        "flaky-0": _monitor(agents["flaky-0"], clock, sample_interval_s=1e12),
    }

    silent_at = SIM_SECONDS // 6
    check_evicted_at = silent_at + int(3 * TIMEOUT_S)
    return_at = SIM_SECONDS // 2
    mem_probe_at = SIM_SECONDS // 2 + SIM_SECONDS // 12

    events: dict[str, list[str]] = {name: [] for name in loops}
    ticking = dict(loops)
    started = time.time()
    tracemalloc.start()
    mem_mid = None
    try:
        for step in range(1, SIM_SECONDS + 1):
            clock.t += 1.0
            for name, loop in ticking.items():
                events[name].extend(loop.tick(clock.t, stop=stop))
            if step == silent_at:
                del ticking["silent-0"]  # the process "crashes"
            if step == check_evicted_at:
                deadline = time.time() + 10.0
                while (
                    server.metrics.counter("agents_evicted_stale") < 1
                    and time.time() < deadline
                ):
                    time.sleep(0.01)
            if step == return_at:
                ticking["silent-0"] = loops["silent-0"]  # it restarts
            if step == mem_probe_at:
                gc.collect()
                mem_mid = tracemalloc.get_traced_memory()[0]
        gc.collect()
        mem_end = tracemalloc.get_traced_memory()[0]
    finally:
        tracemalloc.stop()
    wall_s = time.time() - started

    # settle: let in-flight frames (final heartbeats, trace replies) land
    deadline = time.time() + 5.0
    while time.time() < deadline:
        if server.anomaly_digests():
            break
        for name, loop in ticking.items():
            events[name].extend(loop.tick(clock.t, stop=stop))
        time.sleep(0.01)

    client = SnorlaxClient(module, _workload)
    failing = client.find_runs(True, 1)[0]
    state = {
        "server": server,
        "events": events,
        "mem_mid": mem_mid,
        "mem_end": mem_end,
        "wall_s": wall_s,
        "status": server.fleet_status(),
        "timeline": server.timeline(),
        "digests": server.anomaly_digests(),
        "signature": signature_for_failure("custom-readbeforeinit", failing),
        "module": module,
        "failing": failing,
    }
    yield state
    stop.set()
    for agent in agents.values():
        agent.close()
    server.stop()


def test_soak_covered_at_least_the_requested_simulated_time(soak):
    heartbeats = soak["server"].metrics.counter("heartbeats_received")
    # 4 endpoints beating every HEARTBEAT_S of simulated time, minus the
    # silent episode and flaky losses: half the ideal count is lenient
    ideal = 4 * SIM_SECONDS / HEARTBEAT_S
    assert heartbeats >= ideal / 2
    samples = soak["server"].metrics.counter("monitor_samples_received")
    assert samples >= 2 * (SIM_SECONDS / SAMPLE_S) / 2


def test_anomaly_digest_matches_on_demand(soak):
    digest = soak["digests"].get(soak["signature"])
    assert digest is not None, soak["digests"]
    in_process = SnorlaxServer(
        soak["module"], success_traces_wanted=SUCCESS_TRACES
    ).diagnose(soak["failing"], SnorlaxClient(soak["module"], _workload)).report
    assert digest == report_digest(in_process)


def test_evidence_graph_is_queryable_and_consistent(soak):
    digest = soak["digests"][soak["signature"]]
    graph = soak["server"].evidence_graph(report_key(digest))
    assert graph is not None
    assert EvidenceGraph.from_dict(graph.to_dict()).digest() == graph.digest()
    assert graph.nodes_of_kind("report")
    assert graph.nodes_of_kind("pt_buffer")


def test_exactly_one_stale_eviction_and_no_stale_survivors(soak):
    assert soak["server"].metrics.counter("agents_evicted_stale") == 1
    rows = {r["agent_id"]: r for r in soak["status"]["agents"]}
    assert set(rows) == {"clean-0", "clean-1", "silent-0", "flaky-0"}
    for row in rows.values():
        assert row["alive"]
        assert row["last_seen_age_s"] <= TIMEOUT_S
    assert "reconnect" in soak["events"]["silent-0"]  # it came back


def test_flaky_endpoint_reconnected_through_corruption(soak):
    assert soak["events"]["flaky-0"].count("reconnect") >= 1
    assert soak["server"].metrics.counter("wire_errors") >= 1


def test_memory_is_flat_across_the_back_half(soak):
    assert soak["mem_mid"] is not None
    growth = soak["mem_end"] - soak["mem_mid"]
    assert growth < MEM_GROWTH_LIMIT, f"grew {growth} bytes"


def test_soak_report(soak, emit):
    server = soak["server"]
    m = server.metrics
    lines = [
        "fleet soak (always-on monitoring)",
        f"  simulated time        : {SIM_SECONDS} s "
        f"({SIM_SECONDS / 3600:.2f} h)",
        f"  wall time             : {soak['wall_s']:.1f} s",
        f"  heartbeats received   : {m.counter('heartbeats_received')}",
        f"  monitor samples       : {m.counter('monitor_samples_received')}",
        f"  failures seen         : {m.counter('monitor_failures_seen')}",
        f"  anomaly triggers      : {m.counter('anomaly_triggers')}",
        f"  diagnoses completed   : {m.counter('diagnoses_completed')}",
        f"  evidence graphs built : {m.counter('evidence_graphs_built')}",
        f"  stale evictions       : {m.counter('agents_evicted_stale')}",
        f"  wire errors (chaos)   : {m.counter('wire_errors')}",
        f"  flaky reconnects      : {soak['events']['flaky-0'].count('reconnect')}",
        f"  timeline events       : {len(soak['timeline'])}",
        f"  traced mem mid->end   : {soak['mem_mid']} -> {soak['mem_end']} bytes",
    ]
    emit("fleet_soak", "\n".join(lines))
