"""Fleet service throughput: failures/sec, diagnosis latency, caches.

Not a paper figure — this measures the repo's own deployment layer
(`repro.fleet`): a 50-agent localhost fleet with three corpus bugs
failing on three endpoints each.  Two waves run against the *same*
server caches: the cold wave pays full decode + points-to cost, the
warm wave models the production steady state — the same bugs recurring
across the fleet — where the analysis cache and decoded-trace cache
short-circuit the pipeline.  Recorded per wave: failure ingest rate,
median per-diagnosis latency (queue + remote trace collection +
analysis), the stage breakdown, cache hit counts, and the dedup economy
(reports folded per diagnosis).
"""

from dataclasses import replace

import pytest

from repro.bench import render_table
from repro.core.cache import DiagnosisCaches
from repro.fleet import DEFAULT_BUGS, FleetConfig, FleetMetrics, run_fleet
from repro.obs import Observability

AGENTS = 50
REPORTERS_PER_BUG = 3


@pytest.fixture(scope="module")
def fleet_waves():
    caches = DiagnosisCaches()
    config = FleetConfig(
        agents=AGENTS,
        bug_ids=DEFAULT_BUGS,
        reporters_per_bug=REPORTERS_PER_BUG,
        workers=3,
        max_pending=8,
        # the pipelined collection path: batched wire frames (default)
        # plus adaptive stopping — stop as soon as the top-ranked
        # pattern is stable instead of always collecting the fixed count
        stopping="stable-top",
    )
    # the cold wave runs with the span tracer on (registry shared with
    # the wave's metrics, so the counters below are unaffected); its
    # span tree goes into the emitted report
    cold_metrics = FleetMetrics()
    cold = run_fleet(
        replace(config, obs=Observability(registry=cold_metrics)),
        metrics=cold_metrics,
        caches=caches,
    )
    warm = run_fleet(config, metrics=FleetMetrics(), caches=caches)
    return cold, warm


def _check_wave(r):
    errors = [o for o in r.outcomes if o.error]
    assert not errors, errors
    assert r.failures_received == len(DEFAULT_BUGS) * REPORTERS_PER_BUG
    assert r.diagnoses_completed == len(DEFAULT_BUGS)
    assert r.dedup_hits == r.failures_received - r.diagnoses_completed
    assert r.failures_per_sec > 0.5
    assert 0 < r.median_diagnosis_latency_s < 60
    for digest in r.digests.values():
        assert digest["diagnosed"] and digest["f1"] == 1.0


def test_fleet_throughput(fleet_waves, emit):
    cold, warm = fleet_waves

    def ms(r, timer, key="median_s"):
        timers = r.metrics["timers"]
        return timers[timer][key] * 1000 if timer in timers else 0.0

    def row(metric, fmt, fn):
        return (metric, fmt.format(fn(cold)), fmt.format(fn(warm)))

    rows = [
        row("failures received", "{}", lambda r: r.failures_received),
        row("failures/sec", "{:.1f}", lambda r: r.failures_per_sec),
        row("diagnoses run", "{}", lambda r: r.diagnoses_completed),
        row("reports folded by dedup", "{}", lambda r: r.dedup_hits),
        row(
            "trace requests over the wire",
            "{}",
            lambda r: r.metrics["counters"].get("trace_requests_sent", 0),
        ),
        row(
            "batch frames sent",
            "{}",
            lambda r: r.metrics["counters"].get("trace_batches_sent", 0),
        ),
        row(
            "evidence cache hits",
            "{}",
            lambda r: r.metrics["counters"].get("evidence_cache_hits", 0),
        ),
        row(
            "median diagnosis latency",
            "{:.0f} ms",
            lambda r: r.median_diagnosis_latency_s * 1000,
        ),
        row(
            "  median trace collection",
            "{:.0f} ms",
            lambda r: ms(r, "collection_latency"),
        ),
        row("  collect stage p50", "{:.0f} ms", lambda r: ms(r, "stage_collect")),
        row(
            "  collect stage p95",
            "{:.0f} ms",
            lambda r: ms(r, "stage_collect", "p95_s"),
        ),
        row("  decode stage p50", "{:.2f} ms", lambda r: ms(r, "stage_decode")),
        row(
            "  decode stage p95",
            "{:.2f} ms",
            lambda r: ms(r, "stage_decode", "p95_s"),
        ),
        row("  median analysis", "{:.2f} ms", lambda r: ms(r, "analysis_latency")),
        row(
            "    points-to stage", "{:.2f} ms", lambda r: ms(r, "stage_points_to")
        ),
        row(
            "    trace processing stage",
            "{:.2f} ms",
            lambda r: ms(r, "stage_trace_processing"),
        ),
        row("cache hits (analysis)", "{}", lambda r: r.analysis_cache_hits),
        row("cache hits (trace)", "{}", lambda r: r.trace_cache_hits),
        row("cache hit rate", "{:.0%}", lambda r: r.cache_hit_rate),
        row("wall clock", "{:.2f} s", lambda r: r.elapsed),
    ]
    text = render_table(
        f"fleet throughput: {AGENTS} agents, "
        f"{len(DEFAULT_BUGS)} bugs x {REPORTERS_PER_BUG} reporters; "
        "cold vs warm caches",
        ["metric", "cold", "warm"],
        rows,
    )
    # the cold wave's span forest: one fleet_job tree per bug, with the
    # collection round-trips and pipeline stages nested under it
    text += "\n\ncold-wave span tree:\n" + cold.obs.tracer.render_tree()
    emit("fleet", text)
    # service-level invariants hold in both waves
    _check_wave(cold)
    _check_wave(warm)
    # the waves are deterministic replays of each other: same evidence,
    # byte-identical diagnoses
    assert cold.digests == warm.digests
    # the warm wave is the cache demonstration: every diagnosis hits the
    # analysis cache, every decode comes from the trace cache
    assert warm.analysis_cache_hits == len(DEFAULT_BUGS)
    assert warm.trace_cache_hits > 0
    assert warm.cache_hit_rate == 1.0
    assert warm.metrics["counters"].get("trace_cache_misses", 0) == 0
    # evidence memoization: the warm wave replays the cold wave's
    # collected samples — zero remote executions for recurring failures
    assert cold.metrics["counters"].get("evidence_cache_hits", 0) == 0
    assert warm.metrics["counters"].get("evidence_cache_hits", 0) == len(
        DEFAULT_BUGS
    )
    assert warm.metrics["counters"].get("trace_requests_sent", 0) == 0
