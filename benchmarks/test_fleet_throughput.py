"""Fleet service throughput: failures/sec and diagnosis latency.

Not a paper figure — this measures the repo's own deployment layer
(`repro.fleet`): a 50-agent localhost fleet with three corpus bugs
failing on three endpoints each.  Recorded: failure ingest rate, median
per-diagnosis latency (queue + remote trace collection + analysis), the
stage breakdown, and the dedup economy (reports folded per diagnosis).
"""

import pytest

from repro.bench import render_table
from repro.fleet import DEFAULT_BUGS, FleetConfig, FleetMetrics, run_fleet

AGENTS = 50
REPORTERS_PER_BUG = 3


@pytest.fixture(scope="module")
def fleet_result():
    metrics = FleetMetrics()
    config = FleetConfig(
        agents=AGENTS,
        bug_ids=DEFAULT_BUGS,
        reporters_per_bug=REPORTERS_PER_BUG,
        workers=3,
        max_pending=8,
    )
    return run_fleet(config, metrics=metrics)


def test_fleet_throughput(fleet_result, emit):
    r = fleet_result
    errors = [o for o in r.outcomes if o.error]
    assert not errors, errors

    timers = r.metrics["timers"]
    counters = r.metrics["counters"]

    def ms(timer, key="median_s"):
        return timers[timer][key] * 1000 if timer in timers else 0.0

    rows = [
        ("agents", AGENTS),
        ("bugs failing concurrently", len(DEFAULT_BUGS)),
        ("failures received", r.failures_received),
        ("failures/sec", f"{r.failures_per_sec:.1f}"),
        ("diagnoses run", r.diagnoses_completed),
        ("reports folded by dedup", r.dedup_hits),
        ("trace requests over the wire", counters.get("trace_requests_sent", 0)),
        ("median diagnosis latency", f"{ms('diagnosis_latency'):.0f} ms"),
        ("  median trace collection", f"{ms('collection_latency'):.0f} ms"),
        ("  median analysis", f"{ms('analysis_latency'):.0f} ms"),
        ("wall clock", f"{r.elapsed:.2f} s"),
    ]
    emit(
        "fleet",
        render_table(
            f"fleet throughput: {AGENTS} agents, "
            f"{len(DEFAULT_BUGS)} bugs x {REPORTERS_PER_BUG} reporters",
            ["metric", "value"],
            rows,
        ),
    )
    # service-level invariants
    assert r.failures_received == len(DEFAULT_BUGS) * REPORTERS_PER_BUG
    assert r.diagnoses_completed == len(DEFAULT_BUGS)
    assert r.dedup_hits == r.failures_received - r.diagnoses_completed
    assert r.failures_per_sec > 0.5
    assert 0 < r.median_diagnosis_latency_s < 60
    for digest in r.digests.values():
        assert digest["diagnosed"] and digest["f1"] == 1.0
