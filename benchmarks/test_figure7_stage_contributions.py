"""Figure 7: contribution of each Lazy Diagnosis stage.

The paper quantifies each stage by how much it narrows what must be
analyzed: trace processing cuts the whole program to executed code
(geomean 9x), hybrid points-to narrows to aliasing candidates,
type-based ranking narrows further (4.6x), pattern computation and
statistical diagnosis take it to a single root cause.  We report the
same per-stage funnel from the accuracy runs' stage statistics and
check every stage contributes on every bug.
"""

import math
import statistics

from repro.bench import render_table
from repro.corpus import snorlax_bugs


def _geomean(values):
    return math.exp(statistics.fmean(math.log(v) for v in values))


def test_figure7_stage_funnel(benchmark, accuracy_outcomes, emit):
    benchmark.pedantic(lambda: list(accuracy_outcomes), iterations=1, rounds=1)
    rows = []
    scope_reductions, ranking_reductions = [], []
    for spec in snorlax_bugs():
        st = accuracy_outcomes[spec.bug_id].report.stage_stats
        scope_reductions.append(st.program_instructions / st.executed_instructions)
        ranking_reductions.append(max(1.0, st.alias_candidates / max(1, st.rank1_candidates)))
        rows.append(
            (spec.bug_id, st.program_instructions, st.executed_instructions,
             st.alias_candidates, st.rank1_candidates, st.patterns_generated,
             st.patterns_top_f1)
        )
    rows.append(
        ("GEOMEAN reduction",
         f"{_geomean(scope_reductions):.1f}x (paper: 9x)",
         f"rank: {_geomean(ranking_reductions):.1f}x (paper: 4.6x)",
         "", "", "", "")
    )
    emit(
        "figure7",
        render_table(
            "Figure 7: per-stage analysis funnel "
            "(program -> executed -> aliasing -> rank-1 -> patterns -> top-F1)",
            ["bug", "program", "executed", "aliasing", "rank-1", "patterns", "top-F1"],
            rows,
        ),
    )
    for spec in snorlax_bugs():
        st = accuracy_outcomes[spec.bug_id].report.stage_stats
        # every stage narrows (or at worst preserves) the analysis scope,
        # and the funnel ends at exactly one root-cause pattern
        assert st.executed_instructions < st.program_instructions
        assert st.alias_candidates <= st.executed_instructions
        assert 1 <= st.rank1_candidates <= st.alias_candidates
        assert st.patterns_generated >= 1
        assert st.patterns_top_f1 == 1, f"{spec.bug_id}: top-F1 not unique"
    # scope restriction must be substantial (the paper reports 9x)
    assert _geomean(scope_reductions) >= 3.0
