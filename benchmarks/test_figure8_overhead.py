"""Figure 8: runtime performance overhead of always-on control-flow
tracing, per application (paper: 0.97% average, pbzip2 peak 1.91%).

Measured on successful (steady-state) executions of each evaluation
bug's workload: identical seeds traced vs. untraced.
"""

import statistics

import pytest

from repro.bench import measure_tracing_overhead, render_table
from repro.corpus import snorlax_bugs


@pytest.fixture(scope="module")
def overheads():
    per_system = {}
    for spec in snorlax_bugs():
        m = measure_tracing_overhead(spec, seeds=4)
        per_system.setdefault(spec.system, []).append(m)
    return per_system


def test_figure8_tracing_overhead(benchmark, overheads, emit):
    spec = snorlax_bugs()[0]
    benchmark.pedantic(
        lambda: measure_tracing_overhead(spec, seeds=1), iterations=1, rounds=3
    )
    rows = []
    means = []
    for system, ms in sorted(overheads.items()):
        mean = statistics.fmean(m.mean_percent for m in ms)
        peak = max(m.peak_percent for m in ms)
        means.append(mean)
        rows.append((system, f"{mean:.2f}", f"{peak:.2f}"))
    overall = statistics.fmean(means)
    rows.append(("AVERAGE", f"{overall:.2f} (paper: 0.97)", ""))
    emit(
        "figure8",
        render_table(
            "Figure 8: tracing overhead per application (percent)",
            ["system", "mean %", "peak %"],
            rows,
        ),
    )
    assert len(overheads) == 7
    # the paper's in-production suitability claim: ~1% average, always low
    assert 0.3 <= overall <= 2.0, f"average overhead {overall:.2f}% out of band"
    for system, ms in overheads.items():
        for m in ms:
            assert m.peak_percent < 4.0, f"{system}: peak {m.peak_percent:.2f}%"
            assert m.mean_percent > 0.0, f"{system}: tracing measured as free"
