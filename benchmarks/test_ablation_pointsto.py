"""Ablation: inclusion-based (Andersen) vs unification-based
(Steensgaard) points-to analysis (§4.2).

The paper chooses inclusion-based analysis for its precision and makes
it affordable via scope restriction.  This bench quantifies the choice:
the unification-based analysis produces coarser alias sets, inflating
the candidate set that type ranking and pattern computation must chew
through.
"""

import pytest

from repro.bench import client_for, render_table
from repro.core import PipelineConfig
from repro.core.pipeline import LazyDiagnosis
from repro.corpus import snorlax_bugs
from repro.runtime import SnorlaxServer

BUGS = ["pbzip2-n/a", "memcached-127", "mysql-3596"]


@pytest.fixture(scope="module")
def comparisons():
    rows = {}
    for spec in snorlax_bugs():
        if spec.bug_id not in BUGS:
            continue
        module = spec.module()
        client = client_for(spec, tracing=True)
        failing = client.find_runs(True, 1)[0]
        server = SnorlaxServer(module)
        failing_sample = server.sample_from_run("failure", failing)
        successes = server.collect_successful_traces(
            client, failing.failure.failing_uid, 10_000
        )
        per_algo = {}
        for algo in ("andersen", "steensgaard"):
            pipeline = LazyDiagnosis(module, PipelineConfig(algorithm=algo))
            report = pipeline.diagnose([failing_sample], successes)
            per_algo[algo] = report
        rows[spec.bug_id] = per_algo
    return rows


def test_ablation_points_to_precision(benchmark, comparisons, emit):
    benchmark.pedantic(lambda: len(comparisons), iterations=1, rounds=1)
    table = []
    for bug_id, per_algo in comparisons.items():
        a = per_algo["andersen"].stage_stats
        s = per_algo["steensgaard"].stage_stats
        table.append(
            (bug_id, a.alias_candidates, s.alias_candidates,
             a.patterns_generated, s.patterns_generated,
             "yes" if per_algo["andersen"].unambiguous else "NO",
             "yes" if per_algo["steensgaard"].unambiguous else "NO")
        )
    emit(
        "ablation_pointsto",
        render_table(
            "Ablation: Andersen vs Steensgaard candidate sets",
            ["bug", "cands (A)", "cands (S)", "patterns (A)", "patterns (S)",
             "unambiguous (A)", "unambiguous (S)"],
            table,
        ),
    )
    for bug_id, per_algo in comparisons.items():
        a = per_algo["andersen"].stage_stats
        s = per_algo["steensgaard"].stage_stats
        # unification can only be as precise as inclusion, never better
        assert s.alias_candidates >= a.alias_candidates, bug_id
        # the paper's configuration still diagnoses correctly
        assert per_algo["andersen"].root_cause is not None
        assert per_algo["andersen"].root_cause.f1 == 1.0
