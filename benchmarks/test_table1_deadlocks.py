"""Table 1: average time elapsed between deadlock lock-acquisition
attempts (dT of Figure 1a), with standard deviations, in microseconds.

Reproduces the paper's §3.2 methodology on every deadlock bug in the
corpus: instrument the target instructions, reproduce each bug 10 times
by plain repetition, average.  Shape assertions: every observed gap is
at least the paper's 91 us minimum, and the per-bug averages fall in
the paper's reported band (their Table 1 averages lie between 154 and
3505 us across all bug classes).
"""

import pytest

from repro.bench import measure_cih, render_table
from repro.corpus import table_bugs

RUNS = 10


@pytest.fixture(scope="module")
def measurements():
    return [measure_cih(spec, runs=RUNS) for spec in table_bugs(1)]


def test_table1_deadlock_gaps(benchmark, measurements, emit):
    # benchmark one representative reproduction+measurement unit
    spec = table_bugs(1)[0]
    benchmark.pedantic(
        lambda: measure_cih(spec, runs=1), iterations=1, rounds=3
    )
    rows = []
    for m in measurements:
        rows.append(
            (m.system, m.bug_id, f"{m.mean_us(0):.0f}", f"{m.std_us(0):.0f}",
             f"{m.min_us():.0f}", m.runs_needed)
        )
    emit(
        "table1",
        render_table(
            "Table 1: deadlocks -- dT between lock acquisition attempts (us)",
            ["system", "bug", "dT avg", "dT std", "min", "execs to reproduce x10"],
            rows,
        ),
    )
    assert len(measurements) == 9  # the corpus' 9 deadlock bugs
    for m in measurements:
        assert len(m.gaps_ns) == RUNS
        assert m.min_us() >= 91, f"{m.bug_id}: gap below the paper's 91 us floor"
        assert 100 <= m.mean_us(0) <= 4000, f"{m.bug_id}: average outside band"
