"""§3.3: the coarse interleaving hypothesis summary.

The paper's headline numbers: across its 54 bugs the shortest time
between target events is 91 us, roughly five orders of magnitude above
the ~1 ns granularity fine-grained record/replay must capture
(91 us / 1 ns ~ 10^5).  This bench reproduces the aggregate over the
whole corpus — all 67 bugs, including the table-4 sync-primitive
expansion — and checks the orders-of-magnitude claim.
"""

import math

import pytest

from repro.bench import measure_cih, render_table
from repro.corpus import bugs

L1_HIT_NS = 1.0  # the paper's fine-grained yardstick (~1 ns L1 hit)


@pytest.fixture(scope="module")
def corpus_measurements():
    return [measure_cih(spec, runs=10) for spec in bugs()]


def test_cih_summary(benchmark, corpus_measurements, emit):
    benchmark.pedantic(
        lambda: measure_cih(bugs()[0], runs=1), iterations=1, rounds=3
    )
    global_min_us = min(m.min_us() for m in corpus_measurements)
    means = [m.mean_us(k) for m in corpus_measurements for k in range(m.n_gaps)]
    orders = math.log10(global_min_us * 1000.0 / L1_HIT_NS)
    rows = [
        ("bugs measured", len(corpus_measurements)),
        ("systems", len({m.system for m in corpus_measurements})),
        ("min gap (us)", f"{global_min_us:.0f}"),
        ("smallest per-bug average (us)", f"{min(means):.0f}"),
        ("largest per-bug average (us)", f"{max(means):.0f}"),
        ("orders of magnitude vs 1 ns", f"{orders:.1f}"),
    ]
    emit(
        "cih_summary",
        render_table(
            "Coarse interleaving hypothesis: corpus summary (paper: min 91 us, "
            "averages 154-3505 us, ~5 orders vs 1 ns)",
            ["quantity", "value"],
            rows,
        ),
    )
    assert len(corpus_measurements) == 54
    assert global_min_us >= 91
    # "~5 orders of magnitude" coarser than nanosecond recording
    assert 4.5 <= orders <= 6.5
    # averages land inside the paper's reported band (allowing slack for
    # the synthesized per-bug envelopes; see DESIGN.md §7)
    assert 100 <= min(means) and max(means) <= 5000
