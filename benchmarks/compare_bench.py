"""Distill the diagnosis benchmarks into a machine-readable summary.

Reads the rendered benchmark tables — ``benchmarks/out/table4.txt``
(hybrid vs whole-program analysis speedup) and ``benchmarks/out/fleet.txt``
(cold/warm fleet waves) — and emits ``benchmarks/out/BENCH_diagnosis.json``
with the three headline numbers CI tracks across commits:

- ``table4_geomean_speedup``: geometric-mean hybrid speedup over
  whole-program analysis (paper reports 24x)
- ``fleet_median_latency_ms``: cold/warm median per-diagnosis latency
- ``fleet_cache_hit_rate``: warm-wave cache hit rate (analysis + trace)

Run after the benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/test_table4_analysis_speedup.py \
        benchmarks/test_fleet_throughput.py -q
    python benchmarks/compare_bench.py
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

OUT_DIR = Path(__file__).resolve().parent / "out"


def parse_table4(text: str) -> dict:
    match = re.search(r"^GEOMEAN\s*\|.*?([\d.]+)x", text, re.MULTILINE)
    if not match:
        raise ValueError("table4.txt has no GEOMEAN row")
    per_system = {}
    for line in text.splitlines():
        cells = [c.strip() for c in line.split("|")]
        if len(cells) == 7 and cells[0] not in ("system", "GEOMEAN", ""):
            speedup = re.match(r"([\d.]+)x", cells[6])
            if speedup:
                per_system[cells[0]] = float(speedup.group(1))
    return {
        "table4_geomean_speedup": float(match.group(1)),
        "table4_per_system_speedup": per_system,
    }


def _fleet_row(text: str, metric: str) -> tuple[str, str]:
    for line in text.splitlines():
        cells = [c.strip() for c in line.split("|")]
        if len(cells) == 3 and cells[0] == metric:
            return cells[1], cells[2]
    raise ValueError(f"fleet.txt has no '{metric}' row")


def parse_fleet(text: str) -> dict:
    def ms(cell: str) -> float:
        return float(cell.replace("ms", "").strip())

    cold_lat, warm_lat = _fleet_row(text, "median diagnosis latency")
    cold_ana, warm_ana = _fleet_row(text, "median analysis")
    _, warm_rate = _fleet_row(text, "cache hit rate")
    _, warm_ahits = _fleet_row(text, "cache hits (analysis)")
    _, warm_thits = _fleet_row(text, "cache hits (trace)")
    return {
        "fleet_median_latency_ms": {"cold": ms(cold_lat), "warm": ms(warm_lat)},
        "fleet_median_analysis_ms": {"cold": ms(cold_ana), "warm": ms(warm_ana)},
        "fleet_cache_hit_rate": float(warm_rate.rstrip("%")) / 100.0,
        "fleet_warm_cache_hits": {
            "analysis": int(warm_ahits),
            "trace": int(warm_thits),
        },
    }


def main(out_dir: Path = OUT_DIR) -> dict:
    summary: dict = {"benchmark": "diagnosis", "sources": []}
    table4 = out_dir / "table4.txt"
    fleet = out_dir / "fleet.txt"
    if table4.exists():
        summary.update(parse_table4(table4.read_text()))
        summary["sources"].append(table4.name)
    if fleet.exists():
        summary.update(parse_fleet(fleet.read_text()))
        summary["sources"].append(fleet.name)
    if not summary["sources"]:
        raise SystemExit(
            "no benchmark output found; run the table4/fleet benchmarks first"
        )
    dest = out_dir / "BENCH_diagnosis.json"
    dest.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {dest}", file=sys.stderr)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return summary


if __name__ == "__main__":
    main()
