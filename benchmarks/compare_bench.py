"""Distill the diagnosis benchmarks into a machine-readable summary.

Reads the rendered benchmark tables — ``benchmarks/out/table4.txt``
(hybrid vs whole-program analysis speedup) and ``benchmarks/out/fleet.txt``
(cold/warm fleet waves) — and emits ``benchmarks/out/BENCH_diagnosis.json``
with the three headline numbers CI tracks across commits:

- ``table4_geomean_speedup``: geometric-mean hybrid speedup over
  whole-program analysis (paper reports 24x)
- ``fleet_median_latency_ms``: cold/warm median per-diagnosis latency
- ``fleet_cache_hit_rate``: warm-wave cache hit rate (analysis + trace)

Run after the benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/test_table4_analysis_speedup.py \
        benchmarks/test_fleet_throughput.py -q
    python benchmarks/compare_bench.py

CI regression gate: ``--check-against BASELINE.json`` compares the
freshly parsed summary to a committed baseline and exits non-zero when
the warm fleet latency regressed more than ``--max-regress`` (default
20%).  Sub-``--abs-slack-ms`` absolute deltas are ignored — the warm
path is a few milliseconds, where a relative gate alone would flap on
scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

OUT_DIR = Path(__file__).resolve().parent / "out"


def parse_table4(text: str) -> dict:
    match = re.search(r"^GEOMEAN\s*\|.*?([\d.]+)x", text, re.MULTILINE)
    if not match:
        raise ValueError("table4.txt has no GEOMEAN row")
    per_system = {}
    for line in text.splitlines():
        cells = [c.strip() for c in line.split("|")]
        if len(cells) == 7 and cells[0] not in ("system", "GEOMEAN", ""):
            speedup = re.match(r"([\d.]+)x", cells[6])
            if speedup:
                per_system[cells[0]] = float(speedup.group(1))
    return {
        "table4_geomean_speedup": float(match.group(1)),
        "table4_per_system_speedup": per_system,
    }


def _fleet_row(text: str, metric: str) -> tuple[str, str]:
    for line in text.splitlines():
        cells = [c.strip() for c in line.split("|")]
        if len(cells) == 3 and cells[0] == metric:
            return cells[1], cells[2]
    raise ValueError(f"fleet.txt has no '{metric}' row")


def parse_fleet(text: str) -> dict:
    def ms(cell: str) -> float:
        return float(cell.replace("ms", "").strip())

    cold_lat, warm_lat = _fleet_row(text, "median diagnosis latency")
    cold_ana, warm_ana = _fleet_row(text, "median analysis")
    _, warm_rate = _fleet_row(text, "cache hit rate")
    _, warm_ahits = _fleet_row(text, "cache hits (analysis)")
    _, warm_thits = _fleet_row(text, "cache hits (trace)")
    return {
        "fleet_median_latency_ms": {"cold": ms(cold_lat), "warm": ms(warm_lat)},
        "fleet_median_analysis_ms": {"cold": ms(cold_ana), "warm": ms(warm_ana)},
        "fleet_cache_hit_rate": float(warm_rate.rstrip("%")) / 100.0,
        "fleet_warm_cache_hits": {
            "analysis": int(warm_ahits),
            "trace": int(warm_thits),
        },
    }


def check_regression(
    summary: dict,
    baseline: dict,
    max_regress: float = 0.20,
    abs_slack_ms: float = 25.0,
) -> list[str]:
    """Regressions of the warm fleet latency vs a baseline summary.

    A regression is reported when the new number exceeds the baseline
    by more than ``max_regress`` (relative) *and* by more than
    ``abs_slack_ms`` (absolute).  Returns human-readable problem lines,
    empty when the gate passes; a baseline without the metric passes
    (first run after the metric landed).
    """
    problems: list[str] = []
    old = (baseline.get("fleet_median_latency_ms") or {}).get("warm")
    new = (summary.get("fleet_median_latency_ms") or {}).get("warm")
    if old is None or new is None:
        return problems
    if new > old * (1.0 + max_regress) and new - old > abs_slack_ms:
        problems.append(
            f"warm fleet latency regressed: {old:.0f} ms -> {new:.0f} ms "
            f"(+{(new - old) / old:.0%}, gate is +{max_regress:.0%} "
            f"and >{abs_slack_ms:.0f} ms)"
        )
    return problems


def main(out_dir: Path | None = None) -> dict:
    out_dir = OUT_DIR if out_dir is None else out_dir
    summary: dict = {"benchmark": "diagnosis", "sources": []}
    table4 = out_dir / "table4.txt"
    fleet = out_dir / "fleet.txt"
    if table4.exists():
        summary.update(parse_table4(table4.read_text()))
        summary["sources"].append(table4.name)
    if fleet.exists():
        summary.update(parse_fleet(fleet.read_text()))
        summary["sources"].append(fleet.name)
    if not summary["sources"]:
        raise SystemExit(
            "no benchmark output found; run the table4/fleet benchmarks first"
        )
    dest = out_dir / "BENCH_diagnosis.json"
    dest.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {dest}", file=sys.stderr)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return summary


def cli(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check-against",
        metavar="BASELINE",
        type=Path,
        help="committed BENCH_diagnosis.json to gate against",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.20,
        help="allowed relative warm-latency regression (default 0.20)",
    )
    parser.add_argument(
        "--abs-slack-ms",
        type=float,
        default=25.0,
        help="absolute delta below which a regression is noise (ms)",
    )
    args = parser.parse_args(argv)
    summary = main()
    if args.check_against is None:
        return 0
    baseline = json.loads(args.check_against.read_text())
    problems = check_regression(
        summary, baseline, args.max_regress, args.abs_slack_ms
    )
    for problem in problems:
        print(f"REGRESSION: {problem}", file=sys.stderr)
    if not problems:
        print("benchmark regression gate: OK", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(cli())
