"""§7: when the coarse interleaving hypothesis does NOT hold.

A fine-grained racing pair (sub-microsecond gaps, far below the MTC
period) cannot be ordered by the coarse trace timing.  The paper's
promise: Lazy Diagnosis "will not produce misleading results" — it
reports the likely-involved events *without* ordering information
instead of inventing one.
"""

import random

import pytest

from repro.core import LazyDiagnosis
from repro.ir import parse_module
from repro.runtime import SnorlaxClient, SnorlaxServer

# The writer clears and re-installs within ~200ns; the reader's
# check-to-use window is ~100ns.  Events interleave at nanosecond scale:
# five orders of magnitude finer than the corpus bugs.
SRC = """
module finegrained
struct Slot { p: ptr<i64> }
global g_slot: ptr<Slot> = null

func reader(n: i64) -> void {
entry:
  %i = alloca i64
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = cmp lt %iv, %n
  cbr %c, body, done
body:
  %s = load @g_slot
  %pp = fieldaddr %s, p
  %p1 = load %pp           @ fg.c:10
  %nz = cast %p1 to i64
  %ok = cmp ne %nz, 0
  cbr %ok, use, cont
use:
  %p2 = load %pp           @ fg.c:14
  %v = load %p2            @ fg.c:15
  %pos = cmp ge %v, 0
  cbr %pos, cont, cont
cont:
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  ret
}

func writer(n: i64) -> void {
entry:
  %k = alloca i64
  store 0, %k
  br loop
loop:
  %kv = load %k
  %c = cmp lt %kv, %n
  cbr %c, body, done
body:
  %s = load @g_slot
  %pp = fieldaddr %s, p
  store null, %pp          @ fg.c:30
  %fresh = malloc i64
  store 5, %fresh
  store %fresh, %pp        @ fg.c:32
  %k2 = add %kv, 1
  store %k2, %k
  br loop
done:
  ret
}

func main(n: i64) -> void {
entry:
  %s = malloc Slot
  %x = malloc i64
  store 3, %x
  %pp = fieldaddr %s, p
  store %x, %pp
  store %s, @g_slot
  %t1 = spawn @reader(%n)
  %t2 = spawn @writer(%n)
  join %t1
  join %t2
  ret
}
"""


def _workload(seed):
    rng = random.Random(seed)
    return (rng.randint(150, 400),)


@pytest.fixture(scope="module")
def fine_grained_diagnosis():
    m = parse_module(SRC)
    client = SnorlaxClient(m, _workload)
    failing = client.find_runs(True, 1, max_attempts=2000)
    if not failing:
        pytest.skip("fine-grained race did not manifest in budget")
    server = SnorlaxServer(m)
    failing_sample = server.sample_from_run("failure", failing[0])
    successes = server.collect_successful_traces(
        client, failing[0].failure.failing_uid, 10_000
    )
    report = LazyDiagnosis(m).diagnose([failing_sample], successes)
    return m, report


def test_fine_interleaving_does_not_mislead(fine_grained_diagnosis):
    m, report = fine_grained_diagnosis
    if report.root_cause is not None:
        # If the trace *could* order the events (possible when the
        # scheduler happens to separate them), the diagnosis must be a
        # real interleaving of the racing accesses — not a fabrication.
        uids = set(report.ordered_target_uids())
        event_lines = {
            m.instruction(u).loc.line for u in uids if m.instruction(u).loc
        }
        assert event_lines <= {10, 14, 15, 30, 32}
    else:
        # §7 fallback: the likely-involved events are still reported.
        assert report.unordered_candidates
        lines = {
            ev.location.split(":")[-1] for ev in report.unordered_candidates
        }
        assert lines & {"10", "14", "15", "30", "32"}


def test_fallback_report_renders(fine_grained_diagnosis):
    _, report = fine_grained_diagnosis
    text = report.render()
    if report.root_cause is None:
        assert "ordering could not be established" in text
    else:
        assert "root cause" in text
