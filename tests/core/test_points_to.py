"""Points-to analyses: Andersen precision, Steensgaard soundness,
scope restriction."""

from repro.core import PointsToAnalysis, generate_constraints
from repro.core.andersen import solve as andersen_solve
from repro.core.steensgaard import solve as steensgaard_solve
from repro.ir import parse_module

SRC = """
module t
struct Node { value: i64, next: ptr<Node> }

global g_head: ptr<Node> = null
global g_other: ptr<i64> = null

func main() -> void {
entry:
  %a = malloc Node
  %b = malloc Node
  %x = malloc i64
  store %a, @g_head
  %nf = fieldaddr %a, next
  store %b, %nf
  store %x, @g_other
  %h = load @g_head
  %hn = fieldaddr %h, next
  %second = load %hn
  %o = load @g_other
  ret
}
"""


def _named_insts(m):
    return {i.name: i for i in m.instructions() if i.name}


def test_andersen_basic_facts():
    m = parse_module(SRC)
    analysis = PointsToAnalysis(m).run()
    insts = _named_insts(m)
    pts_a = analysis.points_to(insts["a"])
    assert len(pts_a) == 1 and next(iter(pts_a)).kind == "heap"
    # h = load g_head -> may point to the node stored there
    assert analysis.may_alias(insts["h"], insts["a"])
    # second = load h->next -> points to b
    assert analysis.may_alias(insts["second"], insts["b"])
    # the i64 allocation stays separate from the Node chain
    assert not analysis.may_alias(insts["o"], insts["a"])
    assert analysis.may_alias(insts["o"], insts["x"])


def test_andersen_distinguishes_sites():
    m = parse_module(SRC)
    analysis = PointsToAnalysis(m).run()
    insts = _named_insts(m)
    assert not analysis.may_alias(insts["a"], insts["b"])


def test_steensgaard_sound_but_coarser():
    m = parse_module(SRC)
    system = generate_constraints(m)
    a_result = andersen_solve(system)
    s_result = steensgaard_solve(system)
    insts = _named_insts(m)
    for name in ("a", "b", "h", "second", "o", "x"):
        v = insts[name]
        assert a_result.points_to(v) <= s_result.points_to(v), name


def test_scope_restriction_limits_constraints():
    m = parse_module(SRC)
    main_uids = {i.uid for i in m.function("main").instructions()}
    partial = set(list(sorted(main_uids))[:4])
    narrow = PointsToAnalysis(m, executed_uids=partial).run()
    full = PointsToAnalysis(m).run()
    assert narrow.stats.instructions_analyzed == 4
    assert full.stats.instructions_analyzed == len(main_uids)
    assert narrow.stats.scope_reduction > full.stats.scope_reduction


def test_interprocedural_params_and_returns():
    src = """
module t
func id(p: ptr<i64>) -> ptr<i64> {
entry:
  ret %p
}
func main() -> void {
entry:
  %x = malloc i64
  %y = call @id(%x)
  %v = load %y
  ret
}
"""
    m = parse_module(src)
    analysis = PointsToAnalysis(m).run()
    insts = _named_insts(m)
    assert analysis.may_alias(insts["x"], insts["y"])


def test_indirect_call_resolution():
    src = """
module t
global g_fn: fn(ptr<i64>) -> ptr<i64>
func id(p: ptr<i64>) -> ptr<i64> {
entry:
  ret %p
}
func main() -> void {
entry:
  store @id, @g_fn
  %x = malloc i64
  %f = load @g_fn
  %y = call %f(%x)
  ret
}
"""
    m = parse_module(src)
    analysis = PointsToAnalysis(m).run()
    insts = _named_insts(m)
    assert analysis.may_alias(insts["x"], insts["y"])


def test_spawn_binds_arguments():
    src = """
module t
func worker(p: ptr<i64>) -> void {
entry:
  %v = load %p
  ret
}
func main() -> void {
entry:
  %x = malloc i64
  %t = spawn @worker(%x)
  join %t
  ret
}
"""
    m = parse_module(src)
    analysis = PointsToAnalysis(m).run()
    worker = m.function("worker")
    p = worker.param("p")
    insts = _named_insts(m)
    assert analysis.points_to(p) & analysis.points_to(insts["x"])


def test_global_initializer_constraint():
    src = """
module t
global g_a: i64
global g_p: ptr<i64> = null
func main() -> void {
entry:
  store @g_a, @g_p
  %v = load @g_p
  ret
}
"""
    m = parse_module(src)
    analysis = PointsToAnalysis(m).run()
    insts = _named_insts(m)
    objs = analysis.points_to(insts["v"])
    assert any(o.name == "g_a" for o in objs)


def test_field_insensitivity_collapses_fields():
    # fieldaddr results alias the whole base object
    src = """
module t
struct S { a: i64, b: i64 }
func main() -> void {
entry:
  %s = malloc S
  %fa = fieldaddr %s, a
  %fb = fieldaddr %s, b
  ret
}
"""
    m = parse_module(src)
    analysis = PointsToAnalysis(m).run()
    insts = _named_insts(m)
    assert analysis.may_alias(insts["fa"], insts["fb"])


def test_unknown_algorithm_rejected():
    import pytest

    m = parse_module(SRC)
    with pytest.raises(ValueError):
        PointsToAnalysis(m, algorithm="magic")


def test_query_before_run_rejected():
    import pytest

    m = parse_module(SRC)
    analysis = PointsToAnalysis(m)
    with pytest.raises(RuntimeError):
        analysis.points_to(next(m.instructions()))
