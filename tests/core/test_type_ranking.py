"""Type-based ranking: exact-type candidates outrank differently-typed
aliases of the same object (Figure 4), and nothing is discarded."""

from repro.core import PointsToAnalysis, rank_candidates
from repro.ir import parse_module

# A Queue object whose `items` field holds a Queue* (pointer-valued, as
# in Figure 4) and whose `len` field is a plain i64.  Field-insensitive
# points-to makes every field access alias the object; the declared
# operand types differ, which is exactly what the ranking keys on.
SRC = """
module t
struct Queue { items: ptr<Queue>, len: i64 }

global g_q: ptr<Queue> = null

func main() -> void {
entry:
  %q = malloc Queue
  store %q, @g_q
  %ip = fieldaddr %q, items
  store %q, %ip           ; self-link, gives items a pointee
  %lp = fieldaddr %q, len
  store 3, %lp            ; i64* access to the same object (rank 2)
  %fail = load %ip        ; the "failing" access: operand ptr<ptr<Queue>>
  %also = load %ip        ; same-typed access (rank 1)
  %n = load %lp           ; i64* access (rank 2)
  ret
}
"""


def _setup():
    m = parse_module(SRC)
    executed = {i.uid for i in m.instructions()}
    analysis = PointsToAnalysis(m, executed).run()
    insts = {i.name: i for i in m.instructions() if i.name}
    return m, executed, analysis, insts


def test_exact_type_ranks_first_cast_alias_second():
    m, executed, analysis, insts = _setup()
    fail = insts["fail"]
    ranking = rank_candidates(m, analysis, executed, [fail.pointer], fail.uid)
    by_name = {c.instr.name: c for c in ranking.candidates if c.instr.name}
    assert by_name["also"].rank == 1  # same declared operand type
    assert by_name["n"].rank == 2  # i64* view of the same object: kept
    # rank-1 candidates come first in the ranked order
    ranks = [c.rank for c in ranking.candidates]
    assert ranks == sorted(ranks)
    assert ranking.reduction_factor > 1.0


def test_nothing_discarded():
    m, executed, analysis, insts = _setup()
    fail = insts["fail"]
    ranking = rank_candidates(m, analysis, executed, [fail.pointer], fail.uid)
    # every executed access that may alias the object is present
    assert ranking.considered == len(ranking.candidates)
    assert len(ranking.uids(max_rank=2)) > len(ranking.uids(max_rank=1))


def test_candidates_carry_points_to_sets():
    m, executed, analysis, insts = _setup()
    fail = insts["fail"]
    ranking = rank_candidates(m, analysis, executed, [fail.pointer], fail.uid)
    for c in ranking.candidates:
        assert c.objects  # used by per-anchor alias filtering


def test_lock_filter():
    src = """
module t
struct DB { mu: lock, n: i64 }
func main() -> void {
entry:
  %d = malloc DB
  %mu = fieldaddr %d, mu
  lockinit %mu
  lock %mu
  %np = fieldaddr %d, n
  store 1, %np
  unlock %mu
  ret
}
"""
    m = parse_module(src)
    executed = {i.uid for i in m.instructions()}
    analysis = PointsToAnalysis(m, executed).run()
    mu = next(i for i in m.instructions() if i.name == "mu")
    locks = rank_candidates(m, analysis, executed, [mu], 0, include_locks=True)
    assert {c.access for c in locks.candidates} == {"lock", "unlock"}
    mem = rank_candidates(m, analysis, executed, [mu], 0, include_locks=False)
    assert all(c.access in ("read", "write") for c in mem.candidates)


def test_empty_operands_gives_empty_ranking():
    m, executed, analysis, _ = _setup()
    ranking = rank_candidates(m, analysis, executed, [], 0)
    assert ranking.candidates == []
    assert ranking.reduction_factor == 1.0


def test_scope_restriction_limits_candidates():
    m, executed, analysis, insts = _setup()
    fail = insts["fail"]
    partial = {fail.uid, insts["also"].uid}
    narrow_analysis = PointsToAnalysis(m, executed).run()
    narrow = rank_candidates(m, narrow_analysis, partial, [fail.pointer], fail.uid)
    full = rank_candidates(m, narrow_analysis, executed, [fail.pointer], fail.uid)
    assert len(narrow.candidates) < len(full.candidates)
