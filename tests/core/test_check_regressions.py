"""Regressions the repro.check harness was built to catch (steps 2-3, 7).

Each test pins one of the latent bugs the differential/invariant
fuzzing surfaced: anchor bookkeeping in ``process_snapshot`` and
example selection in ``score_patterns``.  The jobs-queue counterpart
lives in ``tests/fleet/test_jobs.py``.
"""

from repro.core.patterns import PatternInstance, PatternSignature
from repro.core.statistics import observe, score_patterns
from repro.core.trace_processing import attach_anchor, process_snapshot
from repro.pt.decoder import DynamicInstruction, ThreadTrace


def _dyn(uid, tid, seq, lo, hi):
    return DynamicInstruction(uid, tid, seq, lo, hi)


def _thread(tid, instructions, desync=False):
    tt = ThreadTrace(tid)
    tt.desync = desync
    tt.instructions = list(instructions)
    tt.executed_uids = {d.uid for d in instructions}
    tt.end_time = max((d.t_hi for d in instructions), default=0)
    return tt


# -- process_snapshot anchor bookkeeping (fix: registration + ordering) -----


def test_anchor_registers_fully_desynced_thread():
    # The anchoring thread lost sync (no PSB): its trace decodes to
    # nothing, so the anchor is that thread's only dynamic evidence.
    # It must still land in threads / executed_uids / by_uid.
    traces = {
        1: _thread(1, [_dyn(10, 1, 0, 0, 50), _dyn(11, 1, 1, 60, 90)]),
        2: _thread(2, [_dyn(10, 2, 0, 100, 160)], desync=True),
    }
    pt = process_snapshot(
        "x", traces, failing=True,
        anchor_uid=99, anchor_tid=2, anchor_time=170,
    )
    assert 2 in pt.threads
    assert 99 in pt.executed_uids
    assert pt.anchor in pt.instances(99)


def test_anchor_merges_into_uid_bucket_in_order():
    # An anchor timestamped before decoded instances of the same uid
    # must not break the per-uid (t_lo, seq) order instances() promises.
    traces = {
        1: _thread(1, [_dyn(10, 1, 0, 500, 550), _dyn(10, 1, 1, 600, 640)]),
    }
    pt = process_snapshot(
        "x", traces, failing=True,
        anchor_uid=10, anchor_tid=2, anchor_time=100,
    )
    bucket = pt.instances(10)
    assert len(bucket) == 3
    assert bucket == sorted(bucket, key=lambda d: (d.t_lo, d.seq))
    assert bucket[0] is pt.anchor


def test_attach_anchor_synthesized_keeps_bucket_sorted():
    # Same ordering discipline on the operand-recovery path: a
    # synthesized anchor earlier than the decoded instances must sort
    # into place, so the "last instance" pick stays correct afterwards.
    traces = {
        1: _thread(1, [_dyn(10, 1, 0, 400, 450)]),
    }
    pt = process_snapshot("x", traces, failing=True)
    attach_anchor(pt, 10, 2, 50, prefer_decoded=False)
    bucket = pt.instances(10)
    assert bucket == sorted(bucket, key=lambda d: (d.t_lo, d.seq))
    # and a later prefer_decoded pick still returns the true latest
    picked = attach_anchor(pt, 10, 1, 999, prefer_decoded=True)
    assert (picked.t_lo, picked.seq) == (400, 0)


# -- score_patterns example selection (fix: dead loop, rank sentinel) -------


def _obs_with_rank(label, failing, sig, rank):
    class _Comp:
        patterns = [PatternInstance(sig, (None,) * len(sig.events), rank)]

    return observe(label, failing, _Comp())


def test_scored_rank_is_true_minimum_across_observations():
    sig = PatternSignature("WR", ((10, "W"), (20, "R")), "ab")
    obs = [
        _obs_with_rank("fail-0", True, sig, 4),
        _obs_with_rank("ok-0", False, sig, 1),
    ]
    [scored] = score_patterns(obs)
    # the old sentinel (best_rank = 3) clamped ranks above 3 and the
    # dead selection loop never honored the minimum
    assert scored.rank == 1


def test_example_prefers_failing_then_best_rank():
    sig = PatternSignature("WR", ((10, "W"), (20, "R")), "ab")
    fail_worse = _obs_with_rank("fail-0", True, sig, 3)
    fail_better = _obs_with_rank("fail-1", True, sig, 2)
    ok_best = _obs_with_rank("ok-0", False, sig, 1)
    [scored] = score_patterns([fail_worse, fail_better, ok_best])
    # prefer a failing-run witness even when a success run has a better
    # rank, but among failing runs honor the rank
    assert scored.example is fail_better.instances[sig]
    assert scored.rank == 1  # the global minimum is still reported
