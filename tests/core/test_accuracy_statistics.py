"""Kendall-tau ordering accuracy and F1 statistical diagnosis."""

from hypothesis import given, strategies as st

from repro.core.accuracy import kendall_tau_distance, ordering_accuracy
from repro.core.patterns import PatternComputation, PatternInstance, PatternSignature
from repro.core.statistics import cap_successful, observe, score_patterns


def test_kendall_identity():
    assert kendall_tau_distance([1, 2, 3], [1, 2, 3]) == 0


def test_kendall_single_swap():
    # the paper's example: [I1,I2,I3] vs [I1,I3,I2] -> distance 1
    assert kendall_tau_distance([1, 2, 3], [1, 3, 2]) == 1


def test_kendall_full_reversal():
    assert kendall_tau_distance([1, 2, 3], [3, 2, 1]) == 3


def test_ordering_accuracy_exact():
    assert ordering_accuracy([5, 9], [5, 9]) == 100.0
    assert ordering_accuracy([5, 9, 2], [5, 9, 2]) == 100.0


def test_ordering_accuracy_swapped():
    assert ordering_accuracy([9, 5], [5, 9]) == 0.0


def test_ordering_accuracy_penalizes_missing():
    # diagnosing only one of two events cannot score 100%
    assert ordering_accuracy([5], [5, 9]) < 100.0


@given(st.permutations(list(range(5))))
def test_ordering_accuracy_bounds(perm):
    acc = ordering_accuracy(list(perm), list(range(5)))
    assert 0.0 <= acc <= 100.0
    if list(perm) == list(range(5)):
        assert acc == 100.0


def _sig(kind, events, shape):
    return PatternSignature(kind, tuple(events), shape)


def _observation(label, failing, sigs):
    comp = PatternComputation()
    for s in sigs:
        comp.patterns.append(PatternInstance(s, (None,), 1))
    return observe(label, failing, comp)


def test_f1_perfect_pattern():
    root = _sig("WR", [(10, "W"), (20, "R")], "ab")
    noise = _sig("WR", [(11, "W"), (20, "R")], "ab")
    obs = [_observation("fail", True, [root, noise])]
    obs += [_observation(f"ok{i}", False, [noise]) for i in range(5)]
    scored = score_patterns(obs)
    assert scored[0].signature == root
    assert scored[0].f1 == 1.0
    assert scored[0].precision == 1.0 and scored[0].recall == 1.0
    noise_score = next(s for s in scored if s.signature == noise)
    assert noise_score.f1 < 1.0


def test_f1_tie_breaks_toward_fewer_events():
    pair = _sig("WR", [(10, "W"), (20, "R")], "ab")
    triple = _sig("RWR", [(9, "R"), (10, "W"), (20, "R")], "aba")
    obs = [_observation("fail", True, [pair, triple])]
    obs += [_observation(f"ok{i}", False, []) for i in range(3)]
    scored = score_patterns(obs)
    assert scored[0].signature == pair  # simpler explanation wins ties


def test_f1_pattern_absent_in_failing_scores_zero():
    sig = _sig("RW", [(1, "R"), (2, "W")], "ab")
    obs = [
        _observation("fail", True, []),
        _observation("ok", False, [sig]),
    ]
    scored = score_patterns(obs)
    s = next(x for x in scored if x.signature == sig)
    assert s.f1 == 0.0


def test_no_failing_traces_gives_nothing():
    sig = _sig("WR", [(1, "W"), (2, "R")], "ab")
    assert score_patterns([_observation("ok", False, [sig])]) == []


def test_cap_successful_enforces_10x():
    fail = _observation("f", True, [])
    oks = [_observation(f"ok{i}", False, []) for i in range(25)]
    capped = cap_successful([fail] + oks)
    assert sum(1 for o in capped if o.failing) == 1
    assert sum(1 for o in capped if not o.failing) == 10


def test_signature_is_hashable_identity():
    a = _sig("WR", [(1, "W"), (2, "R")], "ab")
    b = _sig("WR", [(1, "W"), (2, "R")], "ab")
    c = _sig("WR", [(1, "W"), (3, "R")], "ab")
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert "WR" in str(a)
