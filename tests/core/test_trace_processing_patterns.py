"""Trace processing (partial order) and bug pattern computation."""

from repro.core.patterns import compute_crash_patterns
from repro.core.trace_processing import ProcessedTrace, attach_anchor, process_snapshot
from repro.core.type_ranking import RankedCandidate, RankingResult
from repro.pt.decoder import DynamicInstruction, ThreadTrace


def _dyn(uid, tid, seq, lo, hi):
    return DynamicInstruction(uid, tid, seq, lo, hi)


def test_partial_order_semantics():
    a = _dyn(1, 1, 0, 100, 200)
    b = _dyn(2, 2, 0, 300, 400)
    c = _dyn(3, 2, 1, 150, 250)  # overlaps a
    assert a.before(b) and not b.before(a)
    assert not a.before(c) and not c.before(a)  # concurrent
    # same-thread instructions order by sequence even when overlapping
    assert c.before(b) or b.seq < c.seq


def test_process_snapshot_merges_threads():
    t1 = ThreadTrace(1)
    t1.instructions = [_dyn(10, 1, 0, 0, 50), _dyn(11, 1, 1, 60, 90)]
    t1.executed_uids = {10, 11}
    t1.end_time = 100
    t2 = ThreadTrace(2)
    t2.instructions = [_dyn(10, 2, 0, 200, 260)]
    t2.executed_uids = {10}
    t2.end_time = 300
    pt = process_snapshot("x", {1: t1, 2: t2}, failing=False)
    assert pt.executed_uids == {10, 11}
    assert len(pt.instances(10)) == 2
    assert pt.threads == {1, 2}
    assert pt.snapshot_time == 300


def test_attach_anchor_prefers_decoded_instance():
    t1 = ThreadTrace(1)
    t1.instructions = [_dyn(10, 1, 0, 0, 50)]
    t1.executed_uids = {10}
    t1.end_time = 100
    pt = process_snapshot("x", {1: t1}, failing=True)
    anchor = attach_anchor(pt, 10, 1, 999, prefer_decoded=True)
    assert anchor.t_hi == 50  # the decoded instance, not a synthetic one


def test_attach_anchor_synthesizes_at_failure_time():
    t1 = ThreadTrace(1)
    t1.instructions = [_dyn(10, 1, 0, 0, 50)]
    t1.executed_uids = {10}
    t1.end_time = 100
    pt = process_snapshot("x", {1: t1}, failing=True)
    anchor = attach_anchor(pt, 99, 1, 777, prefer_decoded=False)
    assert anchor.uid == 99
    assert anchor.t_lo == anchor.t_hi == 777
    assert 99 in pt.executed_uids


def _ranking(module_like_candidates):
    r = RankingResult(failing_uid=0, operand_type=None)
    r.candidates = module_like_candidates
    return r


class _FakeInstr:
    def __init__(self, uid):
        self.uid = uid


def _cand(uid, access, rank=1, objs=frozenset({"obj"})):
    return RankedCandidate(_FakeInstr(uid), rank, access, objs)


def _trace_with(instances, anchor):
    pt = ProcessedTrace("t", failing=True)
    for d in instances:
        pt.add_instance(d)
    pt.anchors.append(anchor)
    pt.anchor = anchor
    if anchor not in pt.dynamic:
        pt.add_instance(anchor)
    return pt


def test_wr_pair_found():
    anchor = _dyn(20, 2, 0, 1000, 1000)
    write = _dyn(10, 1, 0, 100, 200)
    pt = _trace_with([write], anchor)
    comp = compute_crash_patterns(
        pt, _ranking([_cand(10, "write")]), "R", anchor=anchor,
        anchor_objects=frozenset({"obj"}),
    )
    kinds = {p.signature.kind for p in comp.patterns}
    assert "WR" in kinds
    wr = next(p for p in comp.patterns if p.signature.kind == "WR")
    assert wr.signature.events == ((10, "W"), (20, "R"))


def test_rw_pair_when_write_never_ran():
    anchor = _dyn(20, 2, 0, 1000, 1000)
    pt = _trace_with([], anchor)
    comp = compute_crash_patterns(
        pt, _ranking([_cand(10, "write")]), "R", anchor=anchor,
        anchor_objects=frozenset({"obj"}),
    )
    kinds = {p.signature.kind for p in comp.patterns}
    assert "RW" in kinds  # the fail-stop killed the writer


def test_alias_filter_excludes_unrelated_candidates():
    anchor = _dyn(20, 2, 0, 1000, 1000)
    write = _dyn(10, 1, 0, 100, 200)
    pt = _trace_with([write], anchor)
    comp = compute_crash_patterns(
        pt,
        _ranking([_cand(10, "write", objs=frozenset({"elsewhere"}))]),
        "R",
        anchor=anchor,
        anchor_objects=frozenset({"obj"}),
    )
    assert comp.patterns == []


def test_atomicity_triple_anchor_last():
    # T2: R1 ... T1: W ... T2: R2(anchor) -> RWR
    r1 = _dyn(30, 2, 0, 100, 150)
    w = _dyn(10, 1, 0, 300, 350)
    anchor = _dyn(31, 2, 1, 500, 500)
    pt = _trace_with([r1, w], anchor)
    comp = compute_crash_patterns(
        pt,
        _ranking([_cand(10, "write"), _cand(30, "read"), _cand(31, "read")]),
        "R",
        anchor=anchor,
        anchor_objects=frozenset({"obj"}),
    )
    kinds = {p.signature.kind for p in comp.patterns}
    assert "RWR" in kinds
    rwr = next(p for p in comp.patterns if p.signature.kind == "RWR")
    assert rwr.signature.events == ((30, "R"), (10, "W"), (31, "R"))


def test_atomicity_opening_event_must_be_adjacent():
    # T2: R1, then T2: W_own, then T1: W, then anchor -> R1 is no longer
    # the open access; the pattern opens at W_own instead
    r1 = _dyn(30, 2, 0, 100, 150)
    w_own = _dyn(32, 2, 1, 200, 220)
    w = _dyn(10, 1, 0, 300, 350)
    anchor = _dyn(31, 2, 2, 500, 500)
    pt = _trace_with([r1, w_own, w], anchor)
    comp = compute_crash_patterns(
        pt,
        _ranking(
            [_cand(10, "write"), _cand(30, "read"), _cand(31, "read"), _cand(32, "write")]
        ),
        "R",
        anchor=anchor,
        anchor_objects=frozenset({"obj"}),
    )
    rwrs = [p for p in comp.patterns if p.signature.kind == "RWR"]
    assert all(p.signature.events[0][0] != 30 for p in rwrs)
    wwrs = [p for p in comp.patterns if p.signature.kind == "WWR"]
    assert any(p.signature.events[0][0] == 32 for p in wwrs)


def test_anchor_middle_wrw():
    # T1: W1 ... T2: R(anchor) ... T1: W2 -> WRW with anchor mid-pattern
    w1 = _dyn(10, 1, 0, 100, 150)
    anchor = _dyn(30, 2, 0, 300, 320)
    w2 = _dyn(11, 1, 1, 500, 550)
    pt = _trace_with([w1, w2], anchor)
    comp = compute_crash_patterns(
        pt,
        _ranking([_cand(10, "write"), _cand(11, "write"), _cand(30, "read")]),
        "R",
        anchor=anchor,
        anchor_objects=frozenset({"obj"}),
    )
    kinds = {p.signature.kind for p in comp.patterns}
    assert "WRW" in kinds
    wrw = next(p for p in comp.patterns if p.signature.kind == "WRW")
    assert wrw.signature.events == ((10, "W"), (30, "R"), (11, "W"))


def test_gaps_computed_from_instances():
    anchor = _dyn(20, 2, 0, 1000, 1000)
    write = _dyn(10, 1, 0, 100, 200)
    pt = _trace_with([write], anchor)
    comp = compute_crash_patterns(
        pt, _ranking([_cand(10, "write")]), "R", anchor=anchor,
        anchor_objects=frozenset({"obj"}),
    )
    wr = next(p for p in comp.patterns if p.signature.kind == "WR")
    assert wr.gaps() == [800]  # 1000 - 200
