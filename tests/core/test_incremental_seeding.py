"""Incremental Andersen seeding: replaying a cached sub-scope fixpoint
into a wider solve must change nothing but the amount of work done."""

import random

from repro.core import PointsToAnalysis, generate_constraints
from repro.core.andersen import solve
from repro.core.cache import AnalysisCache, CachedAnalysis
from repro.ir import parse_module

SRC = """
module seeded
global g: ptr<i64> = null
global q: ptr<ptr<i64>> = null

func helper(p: ptr<i64>) -> ptr<i64> {
entry:
  store %p, @g
  %r = load @g
  ret %r
}

func main() -> void {
entry:
  %a = malloc i64
  %b = malloc i64
  %cell = malloc ptr<i64>
  store %cell, @q
  store %a, %cell
  %c = load %cell
  %r = call @helper(%c)
  store %b, @g
  %d = load @g
  ret
}
"""


def all_uids(module):
    return [i.uid for i in module.instructions()]


def assert_same_fixpoint(a, b):
    pa, pb = a.as_sets(), b.as_sets()
    for node in set(pa) | set(pb):
        assert pa.get(node, frozenset()) == pb.get(node, frozenset()), (
            f"fixpoint diverges at {node!r}"
        )


def test_seeded_solve_matches_cold_solve():
    module = parse_module(SRC)
    uids = all_uids(module)
    rng = random.Random(7)
    sub = set(rng.sample(uids, len(uids) // 2))
    sub_result = solve(generate_constraints(module, sub))
    full_system = generate_constraints(module, set(uids))
    cold = solve(full_system)
    seeded = solve(generate_constraints(module, set(uids)), seed=sub_result)
    assert_same_fixpoint(cold, seeded)
    assert seeded.stats.seeded_objects > 0
    assert cold.stats.seeded_objects == 0


def test_seeding_counts_in_solver_vocabulary():
    module = parse_module(SRC)
    uids = all_uids(module)
    sub_result = solve(generate_constraints(module, set(uids[: len(uids) // 2])))
    seeded = solve(generate_constraints(module, set(uids)), seed=sub_result)
    counters = seeded.stats.as_counters()
    assert counters["solver_seeded_objects"] == seeded.stats.seeded_objects


def test_seed_candidate_prefers_largest_strict_subset():
    module = parse_module(SRC)
    uids = all_uids(module)
    target = set(uids)
    small = set(uids[:3])
    large = set(uids[: len(uids) - 2])
    cache = AnalysisCache()
    for scope in (small, large):
        system = generate_constraints(module, scope)
        cache.put(
            AnalysisCache.key_for(module, scope, "andersen"),
            CachedAnalysis(system, solve(system)),
        )
    candidate = cache.seed_candidate(module, target)
    assert candidate is not None
    assert candidate.system.instructions_analyzed == len(large)


def test_seed_candidate_rejects_non_subsets():
    module = parse_module(SRC)
    uids = all_uids(module)
    half = set(uids[: len(uids) // 2])
    cache = AnalysisCache()
    system = generate_constraints(module, half)
    cache.put(
        AnalysisCache.key_for(module, half, "andersen"),
        CachedAnalysis(system, solve(system)),
    )
    # the exact same scope is not a *strict* subset (that would be a hit,
    # not a seed), a disjoint/overlapping scope is not a subset at all,
    # and a whole-program target never seeds
    assert cache.seed_candidate(module, half) is None
    other = set(uids[len(uids) // 2 :])
    assert cache.seed_candidate(module, other) is None
    assert cache.seed_candidate(module, None) is None
    # wrong algorithm never seeds either
    assert cache.seed_candidate(module, set(uids), "steensgaard") is None


def test_seed_probe_does_not_touch_cache_stats():
    module = parse_module(SRC)
    uids = all_uids(module)
    half = set(uids[: len(uids) // 2])
    cache = AnalysisCache()
    system = generate_constraints(module, half)
    cache.put(
        AnalysisCache.key_for(module, half, "andersen"),
        CachedAnalysis(system, solve(system)),
    )
    before = (cache.stats.hits, cache.stats.misses)
    cache.seed_candidate(module, set(uids))
    assert (cache.stats.hits, cache.stats.misses) == before


def test_points_to_analysis_seeds_from_cache():
    module = parse_module(SRC)
    uids = all_uids(module)
    sub = set(uids[: len(uids) // 2])
    cache = AnalysisCache()
    PointsToAnalysis(module, executed_uids=sub, cache=cache).run()
    cold = PointsToAnalysis(module, executed_uids=set(uids)).run()
    warm = PointsToAnalysis(module, executed_uids=set(uids), cache=cache).run()
    assert warm.stats.extra.get("seeded") is True
    assert warm.stats.extra["cache"] == "miss"  # a seed is not a hit
    assert warm.result.stats.seeded_objects > 0
    assert_same_fixpoint(cold.result, warm.result)
    # the seeded result was cached under the full scope: a repeat is a
    # plain hit, no re-seeding
    again = PointsToAnalysis(module, executed_uids=set(uids), cache=cache).run()
    assert again.stats.extra["cache"] == "hit"
    assert "seeded" not in again.stats.extra


def test_randomized_seeded_equivalence():
    # random sub-scopes of random scopes across seeds: the seeded solve
    # must always land on the cold fixpoint
    module = parse_module(SRC)
    uids = all_uids(module)
    for seed in range(10):
        rng = random.Random(seed)
        scope = set(rng.sample(uids, max(2, len(uids) * 3 // 4)))
        sub = set(rng.sample(sorted(scope), max(1, len(scope) // 2)))
        sub_result = solve(generate_constraints(module, sub))
        cold = solve(generate_constraints(module, scope))
        seeded = solve(generate_constraints(module, scope), seed=sub_result)
        assert_same_fixpoint(cold, seeded)
