"""The diagnosis caches: content keys, hit accounting, LRU bounds."""

from repro.core import PointsToAnalysis
from repro.core.cache import (
    AnalysisCache,
    DecodedTraceCache,
    module_fingerprint,
    module_index,
)
from repro.ir import parse_module
from repro.pt import PTDriver, TraceConfig
from repro.sim import Machine, RandomScheduler

SRC = """
module t
global g: ptr<i64> = null

func main() -> void {
entry:
  %x = malloc i64
  store %x, @g
  %y = load @g
  ret
}
"""

# same module with one extra instruction: a *different* program
SRC_MUTATED = SRC.replace("%y = load @g", "%y = load @g\n  %z = load @g")

TRACED = """
module t
global g: i64 = 0

func main(n: i64) -> void {
entry:
  %i = alloca i64
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = cmp lt %iv, %n
  cbr %c, body, done
body:
  store %iv, @g
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  ret
}
"""


# -- fingerprints -----------------------------------------------------------


def test_fingerprint_is_content_keyed():
    a = parse_module(SRC)
    b = parse_module(SRC)
    mutated = parse_module(SRC_MUTATED)
    assert module_fingerprint(a) == module_fingerprint(b)
    assert module_fingerprint(a) != module_fingerprint(mutated)


def test_module_index_is_cached_per_object():
    m = parse_module(SRC)
    assert module_index(m) is module_index(m)
    assert module_index(m).instruction_count == m.instruction_count()


# -- analysis cache ---------------------------------------------------------


def test_analysis_cache_hit_returns_same_result():
    cache = AnalysisCache()
    m = parse_module(SRC)
    first = PointsToAnalysis(m, cache=cache).run()
    assert first.stats.extra["cache"] == "miss"
    second = PointsToAnalysis(m, cache=cache).run()
    assert second.stats.extra["cache"] == "hit"
    assert second.result is first.result
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    insts = {i.name: i for i in m.instructions() if i.name}
    assert second.may_alias(insts["x"], insts["y"])


def test_mutated_module_misses():
    cache = AnalysisCache()
    PointsToAnalysis(parse_module(SRC), cache=cache).run()
    mutated = PointsToAnalysis(parse_module(SRC_MUTATED), cache=cache).run()
    assert mutated.stats.extra["cache"] == "miss"
    assert cache.stats.hits == 0 and cache.stats.misses == 2


def test_scope_and_algorithm_key_the_cache():
    cache = AnalysisCache()
    m = parse_module(SRC)
    uids = {i.uid for i in m.instructions()}
    PointsToAnalysis(m, cache=cache).run()
    assert PointsToAnalysis(m, uids, cache=cache).run().stats.extra["cache"] == "miss"
    assert (
        PointsToAnalysis(m, algorithm="andersen-naive", cache=cache)
        .run()
        .stats.extra["cache"]
        == "miss"
    )
    # equal scope content hits regardless of set identity
    assert (
        PointsToAnalysis(m, set(uids), cache=cache).run().stats.extra["cache"]
        == "hit"
    )


# -- decoded trace cache ----------------------------------------------------


def _snapshot():
    m = parse_module(TRACED)
    driver = PTDriver(TraceConfig())
    machine = Machine(m, scheduler=RandomScheduler(0), trace_driver=driver)
    result = machine.run("main", (5,))
    assert result.outcome == "success"
    snap = driver.take_snapshot("test", machine.thread_positions(), machine.clock.now)
    return m, snap


def test_trace_cache_decodes_once():
    m, snap = _snapshot()
    cache = DecodedTraceCache()
    events: dict[str, int] = {}
    (tid, data), *_ = snap.buffers.items()
    first = cache.get_or_decode(m, data, tid, 4096, events)
    second = cache.get_or_decode(m, data, tid, 4096, events)
    assert second is first  # same decoded object, not a re-decode
    assert events == {"trace_cache_misses": 1, "trace_cache_hits": 1}
    # a different mtc period is a different decode
    third = cache.get_or_decode(m, data, tid, 8192, events)
    assert third is not first
    assert events["trace_cache_misses"] == 2


def test_trace_cache_keys_on_buffer_content():
    m, snap = _snapshot()
    cache = DecodedTraceCache()
    (tid, data), *_ = snap.buffers.items()
    cache.get_or_decode(m, data, tid, 4096)
    cache.get_or_decode(m, bytes(data), tid, 4096)  # equal content: hit
    assert cache.stats.hits == 1
    cache.get_or_decode(m, data, tid + 1000, 4096)  # different tid: miss
    assert cache.stats.misses == 2


# -- LRU bounds -------------------------------------------------------------


def test_lru_eviction_accounting():
    cache = AnalysisCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)  # evicts "a"
    assert cache.stats.evictions == 1
    assert cache.get("a") is None
    assert cache.get("c") == 3
    assert len(cache) == 2
    assert cache.stats.hit_rate == 0.5


# -- the unified counter vocabulary -----------------------------------------


def test_as_counters_covers_the_store_vocabulary():
    from repro.core.cache import CacheStats

    stats = CacheStats(hits=4, misses=2, evictions=1, writes=7)
    assert stats.as_counters(prefix="store_") == {
        "store_hits": 4,
        "store_misses": 2,
        "store_evictions": 1,
        "store_writes": 7,
    }
    # in-memory LRUs never fill the store tier: writes stays zero
    cache = AnalysisCache()
    cache.put("k", 1)
    assert cache.stats.writes == 0
    assert cache.stats.as_counters()["writes"] == 0


# -- collected-evidence memoization -----------------------------------------


def test_evidence_cache_keys_on_failure_and_policy():
    from repro.core.cache import CollectedEvidence, CollectedEvidenceCache

    module = parse_module(SRC)
    policy = (10, "stable-top", 3, 4, 1, None)
    key = CollectedEvidenceCache.key_for(module, "pbzip2-n/a", 7, 89, 10_000, policy)
    cache = CollectedEvidenceCache()
    cache.put(key, CollectedEvidence(samples=("s1", "s2"), attempts=5))
    hit = cache.get(key)
    assert hit is not None and hit.samples == ("s1", "s2") and hit.attempts == 5
    # any component changing — failing seed, uid, policy — is a different key
    other_seed = CollectedEvidenceCache.key_for(
        module, "pbzip2-n/a", 8, 89, 10_000, policy
    )
    other_policy = CollectedEvidenceCache.key_for(
        module, "pbzip2-n/a", 7, 89, 10_000, (10, "fixed", 3, 4, 1, None)
    )
    assert cache.get(other_seed) is None
    assert cache.get(other_policy) is None
    # a different program never aliases: the key leads with the fingerprint
    mutated = parse_module(SRC_MUTATED)
    assert cache.get(
        CollectedEvidenceCache.key_for(mutated, "pbzip2-n/a", 7, 89, 10_000, policy)
    ) is None


def test_evidence_cache_keys_on_scheduler_config():
    # regression: the collection scheduler's config (policy class +
    # preemption granularity) is part of the policy tuple — flipping
    # mean_quantum interleaves the same seeds differently, so serving
    # the old evidence would be silently stale
    from repro.core.cache import CollectedEvidenceCache

    module = parse_module(SRC)

    def key(policy_tail):
        policy = (10, "fixed", 3, 4, 1, None, policy_tail)
        return CollectedEvidenceCache.key_for(
            module, "pbzip2-n/a", 7, 89, 10_000, policy
        )

    assert key(("random", 24)) != key(("random", 8))
    assert key(("random", 24)) == key(("random", 24))


def test_diagnosis_caches_carry_an_evidence_tier():
    from repro.core.cache import CollectedEvidenceCache, DiagnosisCaches

    caches = DiagnosisCaches()
    assert isinstance(caches.evidence, CollectedEvidenceCache)
