"""Lazy Diagnosis pipeline end-to-end on a small controlled program,
including stage ablations (PipelineConfig) and report contents."""

import random

import pytest

from repro.core import LazyDiagnosis, PipelineConfig
from repro.ir import parse_module
from repro.runtime import SnorlaxClient, SnorlaxServer

SRC = """
module uaf
struct Res { data: i64, refs: i64 }
global g_res: ptr<Res> = null

func reader(iters: i64, d: i64) -> void {
entry:
  %i = alloca i64
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = cmp lt %iv, %iters
  cbr %c, body, done
body:
  delay %d
  %r = load @g_res
  %f = fieldaddr %r, data
  %v = load %f            @ app.c:20
  %ok = cmp ge %v, 0
  cbr %ok, cont, cont
cont:
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  ret
}

func main(d_run: i64, iters: i64, d: i64) -> void {
entry:
  %r = malloc Res
  %f = fieldaddr %r, data
  store 1, %f
  %ok = cmp ge 1, 0
  cbr %ok, go, go
go:
  %t = spawn @reader(%iters, %d)
  delay %d_run
  %r2 = load @g_res
  free %r2                @ app.c:40
  join %t
  ret
}
"""
# note: main never stores to g_res above -> reader would read null.
SRC = SRC.replace(
    "  %ok = cmp ge 1, 0\n",
    "  store %r, @g_res\n  %ok = cmp ge 1, 0\n",
)


def _workload(seed):
    rng = random.Random(seed)
    d = 300_000
    k = rng.randint(2, 6)
    return (k * d + rng.randint(30_000, 200_000), 5, d)


@pytest.fixture(scope="module")
def diagnosis_inputs():
    m = parse_module(SRC)
    client = SnorlaxClient(m, _workload)
    failing = client.find_runs(True, 1)[0]
    server = SnorlaxServer(m)
    failing_sample = server.sample_from_run("failure", failing)
    successes = server.collect_successful_traces(
        client, failing.failure.failing_uid, 10_000
    )
    return m, failing_sample, successes


def _uids(m):
    free_uid = next(i.uid for i in m.instructions() if i.opcode == "free")
    read_uid = next(
        i.uid for i in m.instructions() if i.loc and i.loc.line == 20
    )
    return free_uid, read_uid


def test_full_pipeline_diagnoses_uaf(diagnosis_inputs):
    m, failing_sample, successes = diagnosis_inputs
    report = LazyDiagnosis(m).diagnose([failing_sample], successes)
    free_uid, read_uid = _uids(m)
    assert report.bug_kind == "order-violation"
    assert report.root_cause.f1 == 1.0
    assert report.ordered_target_uids() == [free_uid, read_uid]
    assert report.unambiguous
    rendered = report.render()
    assert "app.c:40" in rendered and "app.c:20" in rendered
    assert "F1=1.000" in rendered


def test_report_target_events_have_threads_and_roles(diagnosis_inputs):
    m, failing_sample, successes = diagnosis_inputs
    report = LazyDiagnosis(m).diagnose([failing_sample], successes)
    roles = [e.role for e in report.target_events]
    assert roles == ["W", "R"]
    slots = [e.thread_slot for e in report.target_events]
    assert slots == [0, 1]
    assert report.target_events[0].function == "main"
    assert report.target_events[1].function == "reader"


def test_stage_stats_funnel(diagnosis_inputs):
    m, failing_sample, successes = diagnosis_inputs
    report = LazyDiagnosis(m).diagnose([failing_sample], successes)
    st = report.stage_stats
    assert st.program_instructions >= st.executed_instructions > 0
    assert st.alias_candidates >= st.rank1_candidates >= 1
    assert st.patterns_top_f1 == 1
    assert st.analysis_seconds > 0
    reductions = st.reductions()
    assert reductions["trace_processing"] >= 1.0


def test_ablation_no_scope_restriction(diagnosis_inputs):
    m, failing_sample, successes = diagnosis_inputs
    cfg = PipelineConfig(scope_restriction=False)
    report = LazyDiagnosis(m, cfg).diagnose([failing_sample], successes)
    free_uid, read_uid = _uids(m)
    # still correct, but the analysis had to chew the whole program
    assert report.ordered_target_uids() == [free_uid, read_uid]


def test_ablation_no_type_ranking(diagnosis_inputs):
    m, failing_sample, successes = diagnosis_inputs
    cfg = PipelineConfig(type_ranking=False)
    report = LazyDiagnosis(m, cfg).diagnose([failing_sample], successes)
    assert report.stage_stats.rank1_candidates == 0  # everything rank 2
    free_uid, read_uid = _uids(m)
    assert report.ordered_target_uids() == [free_uid, read_uid]


def test_ablation_no_statistics_uses_failing_only(diagnosis_inputs):
    m, failing_sample, successes = diagnosis_inputs
    cfg = PipelineConfig(statistical_diagnosis=False)
    report = LazyDiagnosis(m, cfg).diagnose([failing_sample], successes)
    # without successful traces, several candidate patterns survive
    assert report.ranked_patterns


def test_ablation_no_patterns(diagnosis_inputs):
    m, failing_sample, successes = diagnosis_inputs
    cfg = PipelineConfig(pattern_computation=False)
    report = LazyDiagnosis(m, cfg).diagnose([failing_sample], successes)
    assert report.root_cause is None
    assert not report.diagnosed


def test_requires_failing_trace(diagnosis_inputs):
    m, _, successes = diagnosis_inputs
    from repro.errors import DiagnosisError

    with pytest.raises(DiagnosisError):
        LazyDiagnosis(m).diagnose([], successes)


def test_steensgaard_config_still_diagnoses(diagnosis_inputs):
    m, failing_sample, successes = diagnosis_inputs
    cfg = PipelineConfig(algorithm="steensgaard")
    report = LazyDiagnosis(m, cfg).diagnose([failing_sample], successes)
    assert report.diagnosed
