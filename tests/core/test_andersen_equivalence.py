"""Randomized equivalence: optimized Andersen solver == naive solver.

The optimized solver (SCC collapsing + difference propagation) must
compute exactly the least fixpoint the textbook worklist computes, on
any constraint system.  These tests generate random well-typed modules
that exercise the hard paths — load/store cycles through globals,
double indirection, direct and indirect calls through function-pointer
globals — and assert the two solvers agree on every queryable set,
whole-program and scoped.
"""

import random

from repro.core import PointsToAnalysis, generate_constraints
from repro.core.andersen import solve as solve_opt, solve_naive
from repro.ir import parse_module

N_SEEDS = 20


def random_source(seed: int) -> str:
    """A random well-typed module with guaranteed cyclic constraints.

    Value pools keep the program well-typed: ``vals`` are ``ptr<i64>``,
    ``cells`` are ``ptr<ptr<i64>>`` (so stores through them are
    meaningful load/store constraints), ``fns`` are loaded function
    pointers.
    """
    rng = random.Random(seed)
    n_pglobals = rng.randint(2, 4)  # cells of ptr<i64>
    n_qglobals = rng.randint(1, 3)  # cells of ptr<ptr<i64>>
    n_helpers = rng.randint(1, 3)
    n_stmts = rng.randint(15, 40)

    lines = ["module rnd"]
    for i in range(n_pglobals):
        lines.append(f"global p{i}: ptr<i64> = null")
    for i in range(n_qglobals):
        lines.append(f"global q{i}: ptr<ptr<i64>> = null")
    lines.append("global fp: fn(ptr<i64>) -> ptr<i64>")

    # helpers: identity plus global traffic, so calls build
    # interprocedural cycles (arg -> param -> global -> ret -> result)
    for k in range(n_helpers):
        src_g = rng.randrange(n_pglobals)
        dst_g = rng.randrange(n_pglobals)
        lines += [
            f"func h{k}(p: ptr<i64>) -> ptr<i64> {{",
            "entry:",
            f"  store %p, @p{dst_g}",
            f"  %r = load @p{src_g}",
            "  ret %r",
            "}",
        ]

    body = []
    vals = []  # names of ptr<i64> values
    cells = []  # names of ptr<ptr<i64>> values
    fns = []  # names of loaded function pointers
    n = 0

    def fresh() -> str:
        nonlocal n
        n += 1
        return f"v{n}"

    # seed the pools so every statement kind is always possible
    for _ in range(2):
        name = fresh()
        body.append(f"  %{name} = malloc i64")
        vals.append(name)
    name = fresh()
    body.append(f"  %{name} = malloc ptr<i64>")
    cells.append(name)

    for _ in range(n_stmts):
        kind = rng.randrange(11)
        if kind == 0:
            name = fresh()
            body.append(f"  %{name} = malloc i64")
            vals.append(name)
        elif kind == 1:
            name = fresh()
            body.append(f"  %{name} = malloc ptr<i64>")
            cells.append(name)
        elif kind == 2:
            body.append(
                f"  store %{rng.choice(vals)}, @p{rng.randrange(n_pglobals)}"
            )
        elif kind == 3:
            name = fresh()
            body.append(f"  %{name} = load @p{rng.randrange(n_pglobals)}")
            vals.append(name)
        elif kind == 4:
            body.append(
                f"  store %{rng.choice(cells)}, @q{rng.randrange(n_qglobals)}"
            )
        elif kind == 5:
            name = fresh()
            body.append(f"  %{name} = load @q{rng.randrange(n_qglobals)}")
            cells.append(name)
        elif kind == 6:
            # store through a double pointer: a real store constraint
            body.append(f"  store %{rng.choice(vals)}, %{rng.choice(cells)}")
        elif kind == 7:
            # load through a double pointer: a real load constraint
            name = fresh()
            body.append(f"  %{name} = load %{rng.choice(cells)}")
            vals.append(name)
        elif kind == 8:
            name = fresh()
            body.append(
                f"  %{name} = call @h{rng.randrange(n_helpers)}"
                f"(%{rng.choice(vals)})"
            )
            vals.append(name)
        elif kind == 9:
            body.append(f"  store @h{rng.randrange(n_helpers)}, @fp")
        else:
            name = fresh()
            body.append(f"  %{name} = load @fp")
            fns.append(name)
            result = fresh()
            body.append(f"  %{result} = call %{name}(%{rng.choice(vals)})")
            vals.append(result)

    # guaranteed load/store cycle through two globals: the SCC the
    # optimized solver must collapse without losing objects
    a1, a2 = fresh(), fresh()
    body += [
        f"  %{a1} = load @p0",
        f"  store %{a1}, @p1",
        f"  %{a2} = load @p1",
        f"  store %{a2}, @p0",
    ]
    # and a deeper one through the double-pointer cells
    c1, c2 = fresh(), fresh()
    body += [
        f"  %{c1} = load @q0",
        f"  store %{c1}, @q0",
        f"  %{c2} = load %{c1}",
        f"  store %{c2}, @p0",
    ]

    lines += ["func main() -> void {", "entry:"] + body + ["  ret", "}"]
    return "\n".join(lines)


def query_nodes(module, system):
    """Every queryable node: named instructions, globals, params."""
    nodes = [i for i in module.instructions() if i.name]
    nodes += list(module.globals.values())
    for fn in module.functions.values():
        nodes += list(fn.params)
    return nodes


def assert_equivalent(module, executed_uids=None):
    system_a = generate_constraints(module, executed_uids)
    system_b = generate_constraints(module, executed_uids)
    opt = solve_opt(system_a)
    naive = solve_naive(system_b)
    for node in query_nodes(module, system_a):
        assert opt.points_to(node) == naive.points_to(node), (
            f"points_to({node}) diverges"
        )
    all_objects = list(system_a.objects.values()) + list(
        system_a.functions_by_object
    )
    for obj in all_objects:
        assert opt.contents_of(obj) == naive.contents_of(obj), (
            f"contents_of({obj}) diverges"
        )
    return opt, naive


def test_equivalence_whole_program_randomized():
    collapsed_somewhere = False
    for seed in range(N_SEEDS):
        module = parse_module(random_source(seed))
        opt, _ = assert_equivalent(module)
        collapsed_somewhere |= opt.stats.scc_collapses > 0
    # the generator guarantees load/store cycles, so the optimized
    # solver must actually exercise SCC collapsing across the corpus
    assert collapsed_somewhere


def test_equivalence_scoped_randomized():
    for seed in range(N_SEEDS):
        module = parse_module(random_source(seed))
        uids = [i.uid for i in module.instructions()]
        rng = random.Random(seed * 7919 + 1)
        scope = set(rng.sample(uids, k=max(1, len(uids) // 2)))
        assert_equivalent(module, scope)


def test_equivalence_via_points_to_analysis():
    module = parse_module(random_source(42))
    opt = PointsToAnalysis(module, algorithm="andersen").run()
    naive = PointsToAnalysis(module, algorithm="andersen-naive").run()
    for node in query_nodes(module, opt.system):
        assert opt.points_to(node) == naive.points_to(node)


def test_delta_propagation_saves_work():
    # on cyclic programs the optimized solver must do strictly less
    # propagation work than re-pushing full sets would
    module = parse_module(random_source(3))
    system = generate_constraints(module)
    opt = solve_opt(system)
    assert opt.stats.saved_propagations > 0


def test_equivalence_on_full_corpus():
    # every registered bug's module, whole-program and hybrid-scoped:
    # the constraint systems the production pipeline actually solves
    from repro.corpus import all_bugs

    for spec in all_bugs():
        module = spec.module()
        assert_equivalent(module)
        main_uids = {i.uid for i in module.function("main").instructions()}
        assert_equivalent(module, main_uids)


def test_identical_reports_on_representative_bugs():
    # end-to-end: same evidence, both solvers, byte-identical diagnosis
    from repro.corpus import bug
    from repro.core.pipeline import PipelineConfig
    from repro.fleet.server import report_digest
    from repro.runtime import SnorlaxServer
    from repro.bench.harness import client_for

    for bug_id in ("pbzip2-n/a", "memcached-271", "dbcp-44"):
        spec = bug(bug_id)
        module = spec.module()
        client = client_for(spec, tracing=True)
        failing = client.find_runs(True, 1)[0]
        server = SnorlaxServer(module)
        failing_sample = server.sample_from_run("failure", failing)
        successes = server.collect_successful_traces(
            client, failing.failure.failing_uid, 10_000
        )
        digests = []
        for algorithm in ("andersen", "andersen-naive"):
            from repro.core.pipeline import LazyDiagnosis

            config = PipelineConfig(algorithm=algorithm)
            report = LazyDiagnosis(module, config).diagnose(
                [failing_sample], successes
            )
            digests.append(report_digest(report))
        assert digests[0] == digests[1], f"{bug_id}: reports diverge"


def test_indirect_calls_resolve_identically():
    for seed in range(N_SEEDS):
        module = parse_module(random_source(seed))
        system_a = generate_constraints(module)
        system_b = generate_constraints(module)
        opt = solve_opt(system_a)
        naive = solve_naive(system_b)
        assert (
            opt.stats.indirect_resolutions == naive.stats.indirect_resolutions
        )


def test_merge_mid_flight_does_not_drop_delta():
    """Regression (found by repro.check): online 2-cycle detection can
    re-parent a node while its popped delta is mid-flight in _process;
    re-queuing only the members' symmetric difference then lost objects
    present in both sets, leaving the optimized fixpoint a strict
    subset of the naive one (pts(v2) missed o1/o2 on this system)."""
    from repro.core.constraints import AbstractObject, ConstraintSystem

    objs = [
        AbstractObject("stack", 500, "o0"),
        AbstractObject("stack", 501, "o1"),
        AbstractObject("global", 502, "o2"),
        AbstractObject("global", 503, "o3"),
    ]
    system = ConstraintSystem()
    for o in objs:
        system.objects[o.uid] = o
    system.add_addr_of("v1", objs[0])
    system.add_addr_of("v8", objs[1])
    system.add_addr_of("v8", objs[2])
    system.add_addr_of("v10", objs[3])
    system.copies += [
        ("v3", "v5"), ("v10", "v0"), ("v7", "v7"), ("v9", "v11"),
        ("v3", "v1"), ("v5", "v11"), ("v0", "v2"), ("v2", "v5"),
    ]
    # self-loads (v9 <- *v9, v0 <- *v0) plus stores through the same
    # variables build the contents-node 2-cycles that trigger the merge
    system.loads += [
        ("v1", "v9"), ("v8", "v5"), ("v9", "v9"),
        ("v6", "v10"), ("v0", "v0"), ("v11", "v10"),
    ]
    system.stores += [
        ("v8", "v3"), ("v0", "v9"), ("v10", "v1"),
        ("v4", "v2"), ("v2", "v8"),
    ]
    opt, naive = solve_opt(system), solve_naive(system)
    for v in [f"v{i}" for i in range(12)]:
        assert opt.points_to(v) == naive.points_to(v), v
    for o in objs:
        assert opt.contents_of(o) == naive.contents_of(o), o
