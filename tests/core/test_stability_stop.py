"""Adaptive stopping: the StabilityStopRule contract.

The rule is a pure function of the sample prefix — it never looks at
wall-clock, transport, or attempt counts — which is what makes adaptive
collection produce identical evidence over any transport.
"""

import random

from repro.core.statistics import StabilityStopRule


def make_rule(answers, window=3, min_samples=4):
    """A rule whose evaluator replays a scripted top-pattern sequence."""
    calls = []

    def evaluate(samples):
        calls.append(len(samples))
        return answers[len(calls) - 1]

    rule = StabilityStopRule(
        evaluate=evaluate, window=window, min_samples=min_samples
    )
    return rule, calls


def feed(rule, n):
    samples = []
    for i in range(n):
        samples.append(f"s{i}")
        rule.observe(list(samples))
        if rule.satisfied:
            break
    return len(samples)


def test_stops_once_top_is_stable_across_window():
    rule, _ = make_rule(["A"] * 10, window=3, min_samples=4)
    used = feed(rule, 10)
    assert rule.satisfied
    # evaluation starts at max(1, min_samples - window + 1) = 2 samples;
    # three consecutive identical answers land at sample 4
    assert used == 4


def test_churning_top_never_satisfies():
    rule, _ = make_rule(list("ABCDEFGH"), window=3, min_samples=4)
    feed(rule, 8)
    assert not rule.satisfied


def test_streak_resets_on_change():
    rule, _ = make_rule(["A", "A", "B", "B", "B", "B"], window=3, min_samples=2)
    used = feed(rule, 8)
    assert rule.satisfied
    # A,A then the streak restarts at B: B,B,B completes at eval 5
    assert used == 5


def test_min_samples_floor_holds():
    # a trivially stable top still cannot stop below min_samples
    rule, _ = make_rule(["A"] * 10, window=2, min_samples=6)
    used = feed(rule, 10)
    assert rule.satisfied
    assert used >= 6


def test_no_evaluation_before_first_useful_prefix():
    rule, calls = make_rule(["A"] * 10, window=3, min_samples=6)
    for prefix in (["s0"], ["s0", "s1"], ["s0", "s1", "s2"]):
        rule.observe(list(prefix))
    # first useful prefix is max(1, 6 - 3 + 1) = 4 samples
    assert calls == []
    assert rule.evaluations == 0


def test_none_evaluations_do_not_build_a_streak():
    rule, _ = make_rule([None, None, "A", "A", "A"], window=3, min_samples=1)
    used = feed(rule, 8)
    assert rule.satisfied
    assert used == 5


def test_lookahead_counts_remaining_streak():
    rule, _ = make_rule(["A", "A"], window=4, min_samples=1)
    assert rule.lookahead() == 4  # nothing evaluated yet: need the window
    rule.observe(["s0"])
    assert rule.lookahead() == 3
    rule.observe(["s0", "s1"])
    assert rule.lookahead() == 2


def test_lookahead_zero_once_satisfied():
    rule, _ = make_rule(["A"] * 5, window=2, min_samples=1)
    feed(rule, 5)
    assert rule.satisfied
    assert rule.lookahead() == 0


def _reference_satisfied(tops, window, min_samples, n):
    """Brute-force model: satisfied after ``n`` samples iff some prefix
    length ``m <= n`` has ``m >= min_samples`` and the ``window`` tops
    for prefixes ``m-window+1..m`` are one identical non-None value."""
    for m in range(max(window, min_samples), n + 1):
        run = tops[m - window:m]
        if run and run[0] is not None and all(t == run[0] for t in run):
            return True
    return False


def test_min_samples_window_boundary_property():
    # randomized differential against the brute-force model, stepwise:
    # satisfied must flip exactly when the model says — in particular a
    # streak completing exactly at min_samples stops there, and
    # satisfied never flips before min_samples
    rng = random.Random(0xC0FFEE)
    for _case in range(400):
        window = rng.randrange(1, 5)
        min_samples = rng.randrange(1, 8)
        n = rng.randrange(1, 14)
        tops = [rng.choice(["A", "B", None]) for _ in range(n)]
        rule = StabilityStopRule(
            evaluate=lambda samples, tops=tops: tops[len(samples) - 1],
            window=window,
            min_samples=min_samples,
        )
        samples = []
        for i in range(n):
            samples.append(f"s{i}")
            rule.observe(list(samples))
            want = _reference_satisfied(tops, window, min_samples, i + 1)
            assert rule.satisfied == want, (
                f"window={window} min_samples={min_samples} "
                f"tops={tops[: i + 1]}: got {rule.satisfied}, want {want}"
            )
            if rule.satisfied:
                assert i + 1 >= min_samples  # the floor always holds
                break


def test_streak_completing_exactly_at_min_samples_stops():
    # the boundary case by construction: window=3, min_samples=5 —
    # evaluation starts at prefix 3 and the streak completes at
    # exactly prefix 5, which is also the floor
    rule, _ = make_rule(["A"] * 8, window=3, min_samples=5)
    used = feed(rule, 8)
    assert rule.satisfied
    assert used == 5


def test_observe_is_a_noop_after_satisfaction():
    rule, calls = make_rule(["A"] * 10, window=2, min_samples=1)
    feed(rule, 5)
    evaluated = len(calls)
    rule.observe(["s0", "s1", "s2", "s3", "s4", "s5"])
    assert len(calls) == evaluated  # no further evaluator work
