"""The reproduction engine: forced/inverse replays and verdicts.

One corpus bug per pattern template must validate against its ground
truth; a deliberately wrong order must be refuted; and validating a
pipeline report must stamp it (and its fleet digest) in place.
"""

import pytest

from repro.corpus import bug
from repro.fleet.server import report_digest
from repro.runtime import SnorlaxClient, SnorlaxServer
from repro.sim.scheduler import ForceOrder, SerializeAfter, SerializeFunction
from repro.validate.engine import (
    find_failing_seed,
    validate_ground_truth,
    validate_order,
    validate_report,
)
from repro.validate.synthesizer import (
    OrderedEvent,
    TargetOrder,
    synthesize_directives,
    synthesize_inverse_fallback,
)

# one representative per corpus template (WR, RW, WW, RWR, WWR, RWW,
# WRW, deadlock)
TEMPLATE_BUGS = [
    "groovy-7590",   # WR  order-violation
    "aget-2",        # RW  order-violation
    "httpd-21287",   # WW  order-violation (double free)
    "aget-3",        # RWR atomicity-violation
    "dbcp-398",      # WWR atomicity-violation
    "httpd-25520",   # RWW atomicity-violation
    "aget-n/a",      # WRW atomicity-violation
    "dbcp-44",       # ABBA deadlock
]


@pytest.mark.parametrize("bug_id", TEMPLATE_BUGS)
def test_ground_truth_validates(bug_id):
    spec = bug(bug_id)
    found = validate_ground_truth(spec)
    assert found is not None, f"{bug_id}: no failing seed"
    outcome, _seed = found
    assert outcome.validated, f"{bug_id}:\n{outcome.render()}"
    forced, inverse = outcome.witnesses[0], outcome.witnesses[-1]
    assert forced.mode == "forced" and forced.outcome != "success"
    assert forced.order_satisfied
    assert inverse.mode == "inverse" and inverse.outcome == "success"


def test_wrong_order_is_refuted():
    # the *safe* order (inverse of the diagnosed one) forced onto the
    # failing seed must not reproduce -> refuted
    spec = bug("aget-2")
    module = spec.module()
    found = find_failing_seed(module, spec.workload, spec.entry)
    assert found is not None
    failing_seed, failing_uid = found
    truth = TargetOrder.from_truth(module, spec.ground_truth)
    reversed_order = TargetOrder(truth.bug_kind, tuple(reversed(truth.events)))
    outcome = validate_order(
        module,
        spec.workload,
        reversed_order,
        entry=spec.entry,
        failing_seed=failing_seed,
        expected_uid=failing_uid,
    )
    assert outcome.status == "refuted", outcome.render()
    assert outcome.witnesses[0].outcome == "success"  # forced run passed


def test_validate_report_stamps_report_and_digest():
    spec = bug("aget-2")
    module = spec.module()
    client = SnorlaxClient(module, spec.workload, entry=spec.entry)
    failing = client.find_runs(True, 1)[0]
    report = SnorlaxServer(module).diagnose(failing, client).report
    assert report.validation is None
    assert "validation" not in report_digest(report)  # back-compat
    outcome = validate_report(
        module, spec.workload, report,
        entry=spec.entry, failing_seed=failing.seed,
    )
    assert outcome is not None and outcome.validated
    assert report.validation == outcome.as_dict()
    digest = report_digest(report)
    assert digest["validation"]["status"] == "validated"
    witnesses = digest["validation"]["witnesses"]
    assert witnesses[0]["mode"] == "forced"
    assert witnesses[0]["seed"] == failing.seed


def test_witnesses_are_deterministic():
    # the whole chaos-equality story rests on this: same (module, seed,
    # order) -> byte-identical witness schedules, virtual clock included
    spec = bug("aget-2")
    module = spec.module()
    found = find_failing_seed(module, spec.workload, spec.entry)
    failing_seed, failing_uid = found
    order = TargetOrder.from_truth(module, spec.ground_truth)

    def run():
        return validate_order(
            module, spec.workload, order,
            entry=spec.entry, failing_seed=failing_seed,
            expected_uid=failing_uid,
        ).as_dict()

    assert run() == run()


# -- synthesizer -------------------------------------------------------------


def test_from_truth_alternates_slots():
    spec = bug("aget-3")  # RWR: victim, rival, victim
    module = spec.module()
    order = TargetOrder.from_truth(module, spec.ground_truth)
    assert [e.slot for e in order.events] == [0, 1, 0]
    assert order.uids == tuple(spec.ground_truth.resolve(module))


def test_directives_shape():
    spec = bug("aget-2")
    module = spec.module()
    order = TargetOrder.from_truth(module, spec.ground_truth)
    forced, inverse = synthesize_directives(module, order, spec.entry)
    assert isinstance(forced, ForceOrder)
    assert forced.uids == order.uids
    assert isinstance(inverse, (SerializeAfter, SerializeFunction))


def test_symmetric_race_serializes_the_function():
    spec = bug("aget-2")  # any module works: the branch is order-driven
    module = spec.module()
    order = TargetOrder(
        "atomicity-violation",
        (OrderedEvent(1, "W", 0, "f"), OrderedEvent(2, "W", 1, "f")),
    )
    _forced, inverse = synthesize_directives(module, order, spec.entry)
    assert inverse == SerializeFunction("f")
    # ...and the fallback has no second direction to offer
    assert synthesize_inverse_fallback(module, order, spec.entry) is None


def test_inverse_fallback_gates_the_rival():
    spec = bug("aget-3")
    module = spec.module()
    order = TargetOrder.from_truth(module, spec.ground_truth)
    fallback = synthesize_inverse_fallback(module, order, spec.entry)
    assert isinstance(fallback, SerializeAfter)
    rival = next(e for e in order.events if e.slot == 1)
    assert fallback.gate_uid == rival.uid
