"""Fix proposal/validation: every bug class accepts a real fix and
rejects a naive one, and IR patching remaps the order uids correctly."""

import pytest

from repro.corpus import bug
from repro.validate.engine import find_failing_seed
from repro.validate.fixes import (
    FixNotApplicable,
    propose_and_validate,
    propose_fixes,
)
from repro.validate.synthesizer import TargetOrder

CLASS_BUGS = [
    ("aget-2", "order-violation"),
    ("groovy-7590", "order-violation"),
    ("httpd-21287", "order-violation"),
    ("aget-3", "atomicity-violation"),
    ("dbcp-398", "atomicity-violation"),
    ("dbcp-44", "deadlock"),
]


def _order_and_seed(spec):
    module = spec.module()
    found = find_failing_seed(module, spec.workload, spec.entry)
    assert found is not None, f"{spec.bug_id}: no failing seed"
    failing_seed, _uid = found
    return TargetOrder.from_truth(module, spec.ground_truth), failing_seed


@pytest.mark.parametrize("bug_id,kind", CLASS_BUGS)
def test_class_accepts_a_fix_and_rejects_a_naive_one(bug_id, kind):
    spec = bug(bug_id)
    assert spec.kind == kind
    order, failing_seed = _order_and_seed(spec)
    outcomes = propose_and_validate(
        kind,
        spec.fresh_module,
        spec.workload,
        order,
        entry=spec.entry,
        failing_seed=failing_seed,
        sweep_seeds=20,
    )
    accepted = [o for o in outcomes if o.accepted]
    rejected = [o for o in outcomes if not o.accepted]
    assert accepted, f"{bug_id}: no candidate fix accepted:\n" + "\n".join(
        f"{o.fix}: {o.reason}" for o in outcomes
    )
    assert rejected, f"{bug_id}: every candidate accepted (no discrimination)"
    for o in accepted:
        # an accepted fix survived the reproducer schedule...
        assert o.forced is not None and o.forced.outcome == "success"
        # ...and the whole success sweep (failing seed + 20 more)
        assert o.sweep_runs == 21


def test_propose_fixes_covers_every_class():
    for kind in ("order-violation", "atomicity-violation", "deadlock"):
        fixes = propose_fixes(kind)
        assert fixes, kind
    assert propose_fixes("unknown-kind") == []


def test_apply_remaps_order_uids_onto_the_patched_module():
    spec = bug("aget-3")
    module = spec.module()
    order = TargetOrder.from_truth(module, spec.ground_truth)
    applied = 0
    for fix in propose_fixes("atomicity-violation"):
        fresh = spec.fresh_module()
        try:
            mapping = fix.apply(fresh, order, spec.entry)
        except FixNotApplicable:
            continue
        applied += 1
        # every diagnosed uid survives the patch under a (possibly new)
        # uid, and the mapped uid resolves in the patched module
        for uid in order.uids:
            assert uid in mapping, f"{fix.name}: uid {uid} unmapped"
            assert fresh.instruction(mapping[uid]) is not None
    assert applied > 0


def test_inapplicable_template_is_a_rejection_not_an_error():
    # the WR template's move-free-after-join cannot apply to a module
    # with no free in the victim function: it must surface as a
    # rejected outcome, never an exception
    spec = bug("aget-2")  # RW: publish/spawn shape, no racing free
    order, failing_seed = _order_and_seed(spec)
    outcomes = propose_and_validate(
        "order-violation",
        spec.fresh_module,
        spec.workload,
        order,
        entry=spec.entry,
        failing_seed=failing_seed,
        sweep_seeds=5,
    )
    inapplicable = [o for o in outcomes if "not applicable" in o.reason]
    assert inapplicable
    assert all(not o.accepted for o in inapplicable)
