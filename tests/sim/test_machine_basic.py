"""Sequential interpreter semantics: arithmetic, control flow, calls."""

import pytest

from repro.errors import SimulationError, StepLimitExceeded
from repro.ir import parse_module
from repro.sim import Machine


def run(src, entry="main", args=(), **kw):
    m = parse_module(src)
    return Machine(m, **kw).run(entry, args)


def test_arithmetic_and_return():
    r = run(
        """
module t
func main() -> i64 {
entry:
  %a = add 2, 3
  %b = mul %a, 4
  %c = sub %b, 1
  %d = div %c, 2
  %e = mod %d, 4
  ret %e
}
"""
    )
    assert r.outcome == "success"
    assert r.exit_value == ((2 + 3) * 4 - 1) // 2 % 4


def test_bitwise_ops():
    r = run(
        """
module t
func main() -> i64 {
entry:
  %a = and 12, 10
  %b = or %a, 1
  %c = xor %b, 255
  %d = shl %c, 2
  %e = shr %d, 1
  ret %e
}
"""
    )
    assert r.exit_value == ((((12 & 10) | 1) ^ 255) << 2) >> 1


def test_loop_sums():
    r = run(
        """
module t
func main(n: i64) -> i64 {
entry:
  %acc = alloca i64
  %i = alloca i64
  store 0, %acc
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = cmp lt %iv, %n
  cbr %c, body, done
body:
  %a = load %acc
  store %a, %acc
  %a2 = add %a, %iv
  store %a2, %acc
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  %r = load %acc
  ret %r
}
""",
        args=(10,),
    )
    assert r.exit_value == sum(range(10))


def test_calls_and_recursion():
    r = run(
        """
module t
func fib(n: i64) -> i64 {
entry:
  %c = cmp lt %n, 2
  cbr %c, base, rec
base:
  ret %n
rec:
  %n1 = sub %n, 1
  %n2 = sub %n, 2
  %a = call @fib(%n1)
  %b = call @fib(%n2)
  %s = add %a, %b
  ret %s
}
func main() -> i64 {
entry:
  %r = call @fib(10)
  ret %r
}
"""
    )
    assert r.exit_value == 55


def test_indirect_call_through_global():
    r = run(
        """
module t
global g_handler: fn(i64) -> i64
func double(x: i64) -> i64 {
entry:
  %r = mul %x, 2
  ret %r
}
func main() -> i64 {
entry:
  store @double, @g_handler
  %f = load @g_handler
  %r = call %f(21)
  ret %r
}
"""
    )
    assert r.exit_value == 42


def test_globals_initialized():
    r = run(
        """
module t
global g: i64 = 9
func main() -> i64 {
entry:
  %v = load @g
  ret %v
}
"""
    )
    assert r.exit_value == 9


def test_division_by_zero_crashes():
    r = run(
        """
module t
func main() -> i64 {
entry:
  %z = sub 1, 1
  %r = div 5, %z
  ret %r
}
"""
    )
    assert r.outcome == "crash"
    assert r.failure.detail.endswith("division by zero")


def test_step_limit():
    src = """
module t
func main() -> void {
entry:
  br entry
}
"""
    m = parse_module(src)
    result = Machine(m, max_steps=1000).run("main")
    assert result.outcome == "step-limit"


def test_unfinalized_module_rejected():
    from repro.ir import Module

    m = Module("t")
    with pytest.raises(SimulationError):
        Machine(m)


def test_duration_reflects_costs():
    r = run(
        """
module t
func main() -> void {
entry:
  delay 5000
  ret
}
"""
    )
    assert r.duration >= 5000


def test_heap_and_struct_fields():
    r = run(
        """
module t
struct P { x: i64, y: i64 }
func main() -> i64 {
entry:
  %p = malloc P
  %xf = fieldaddr %p, x
  %yf = fieldaddr %p, y
  store 30, %xf
  store 12, %yf
  %a = load %xf
  %b = load %yf
  %s = add %a, %b
  free %p
  ret %s
}
"""
    )
    assert r.exit_value == 42


def test_array_indexing():
    r = run(
        """
module t
func main() -> i64 {
entry:
  %buf = malloc i64, 4
  %e2 = indexaddr %buf, 2
  store 7, %e2
  %v = load %e2
  ret %v
}
"""
    )
    assert r.exit_value == 7
