"""Fail-stop faults: what the error tracker will see."""

from repro.ir import parse_module
from repro.sim import CrashReport, Machine


def run(src, args=()):
    return Machine(parse_module(src)).run("main", args)


def test_null_deref_crash_carries_operand():
    r = run(
        """
module t
struct S { x: i64 }
global g: ptr<S> = null
func main() -> void {
entry:
  %p = load @g
  %f = fieldaddr %p, x
  %v = load %f      @ app.c:10
  ret
}
"""
    )
    assert r.outcome == "crash"
    assert isinstance(r.failure, CrashReport)
    assert r.failure.fault_kind == "null"
    assert r.failure.operand_value == 0
    instr = None  # failing uid maps back to the IR
    assert r.failure.failing_uid > 0


def test_use_after_free_crash():
    r = run(
        """
module t
func main() -> void {
entry:
  %p = malloc i64
  free %p
  %v = load %p
  ret
}
"""
    )
    assert r.outcome == "crash"
    assert r.failure.fault_kind == "use-after-free"


def test_double_free_crash():
    r = run(
        """
module t
func main() -> void {
entry:
  %p = malloc i64
  free %p
  free %p
  ret
}
"""
    )
    assert r.outcome == "crash"
    assert "double free" in r.failure.detail


def test_assert_failure_is_fail_stop():
    r = run(
        """
module t
func main() -> void {
entry:
  %c = cmp eq 1, 2
  assert %c, "invariant broken"
  ret
}
"""
    )
    assert r.outcome == "assert"
    assert r.failure.kind == "assert"
    assert "invariant broken" in r.failure.detail


def test_oob_after_red_zone():
    r = run(
        """
module t
func main() -> void {
entry:
  %p = malloc i64, 2
  %e = indexaddr %p, 9
  %v = load %e
  ret
}
"""
    )
    assert r.outcome == "crash"


def test_crash_stops_other_threads():
    r = run(
        """
module t
global g: ptr<i64> = null
func crasher() -> void {
entry:
  %p = load @g
  %v = load %p
  ret
}
func main() -> void {
entry:
  %t = spawn @crasher()
  delay 1000000
  join %t
  ret
}
"""
    )
    assert r.outcome == "crash"
    assert r.duration < 1_000_000  # the sleeper never finished its delay


def test_failing_tid_identifies_crashing_thread():
    r = run(
        """
module t
global g: ptr<i64> = null
func crasher() -> void {
entry:
  delay 5000
  %p = load @g
  %v = load %p
  ret
}
func main() -> void {
entry:
  %t = spawn @crasher()
  join %t
  ret
}
"""
    )
    assert r.failure.failing_tid == 2


def test_free_null_crashes():
    r = run(
        """
module t
struct S { x: i64 }
global g: ptr<S> = null
func main() -> void {
entry:
  %p = load @g
  free %p
  ret
}
"""
    )
    assert r.outcome == "crash"
