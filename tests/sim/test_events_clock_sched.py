"""Event log instrumentation, virtual clock, scheduler policies."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import parse_module
from repro.sim import Machine, RandomScheduler
from repro.sim.clock import CostModel, VirtualClock
from repro.sim.events import EventLog, TargetEvent
from repro.sim.scheduler import FixedOrderScheduler, Scheduler


def test_clock_advances_monotonically():
    clock = VirtualClock()
    clock.advance(5)
    clock.advance_to(3)  # never backwards
    assert clock.now == 5
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_cost_model_overrides():
    costs = CostModel(overrides={"load": 99})
    assert costs.cost("load") == 99
    assert costs.cost("store") == CostModel().store
    assert costs.cost("whatever") == costs.default


def test_event_log_records_watched_instructions():
    src = """
module t
global g: i64 = 0
func main() -> void {
entry:
  store 1, @g     @ t.c:5
  %v = load @g    @ t.c:6
  ret
}
"""
    m = parse_module(src)
    store_uid = next(i.uid for i in m.instructions() if i.opcode == "store")
    load_uid = next(i.uid for i in m.instructions() if i.opcode == "load")
    machine = Machine(m, watch_uids={store_uid, load_uid})
    r = machine.run("main")
    kinds = [(e.uid, e.kind) for e in r.event_log]
    assert kinds == [(store_uid, "write"), (load_uid, "read")]
    times = [e.time for e in r.event_log]
    assert times == sorted(times)
    assert all(e.address is not None for e in r.event_log)


def test_event_log_gaps():
    log = EventLog()
    log.record(TargetEvent(1, 1, 100, "write", 0x1000))
    log.record(TargetEvent(2, 2, 400, "read", 0x1000))
    log.record(TargetEvent(3, 1, 900, "write", 0x1000))
    assert log.gaps([1, 2, 3]) == [300, 500]
    assert log.gaps([3, 1]) is None  # never in that order
    assert log.first(2).time == 400
    assert log.last(1).uid == 1


def test_round_robin_scheduler_deterministic():
    s = Scheduler()
    picks = [s.pick([1, 2, 3])[0] for _ in range(6)]
    assert picks == [1, 2, 3, 1, 2, 3]


def test_random_scheduler_reproducible():
    s1 = RandomScheduler(seed=5)
    s2 = RandomScheduler(seed=5)
    seq1 = [s1.pick([1, 2, 3]) for _ in range(20)]
    seq2 = [s2.pick([1, 2, 3]) for _ in range(20)]
    assert seq1 == seq2
    s1.reset()
    assert [s1.pick([1, 2, 3]) for _ in range(20)] == seq1


def test_random_scheduler_quantum_positive():
    s = RandomScheduler(seed=1, mean_quantum=4)
    for _ in range(100):
        tid, quantum = s.pick([1, 2])
        assert tid in (1, 2)
        assert quantum >= 1


def test_fixed_order_scheduler_script_then_rr():
    s = FixedOrderScheduler([(2, 3), (1, 1)])
    assert s.pick([1, 2]) == (2, 3)
    assert s.pick([1, 2]) == (1, 1)
    # exhausted: falls back to round-robin
    tid, q = s.pick([1, 2])
    assert tid in (1, 2) and q == 1


def test_scheduler_rejects_empty():
    with pytest.raises(ValueError):
        Scheduler().pick([])


@given(st.integers(min_value=0, max_value=2**31))
def test_random_scheduler_any_seed(seed):
    s = RandomScheduler(seed=seed)
    tid, quantum = s.pick([4, 9])
    assert tid in (4, 9)
    assert 1 <= quantum <= 16 * s.mean_quantum
