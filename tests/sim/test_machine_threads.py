"""Concurrency semantics: spawn/join, locks, deadlocks, sleeping."""

import pytest

from repro.ir import parse_module
from repro.sim import DeadlockReport, FixedOrderScheduler, Machine, RandomScheduler


def run(src, entry="main", args=(), seed=0, **kw):
    m = parse_module(src)
    return Machine(m, scheduler=RandomScheduler(seed), **kw).run(entry, args)


COUNTER = """
module t
global g: i64 = 0
global mu: lock

func worker(n: i64) -> void {
entry:
  %i = alloca i64
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = cmp lt %iv, %n
  cbr %c, body, done
body:
  lock @mu
  %v = load @g
  %v2 = add %v, 1
  store %v2, @g
  unlock @mu
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  ret
}

func main(n: i64) -> i64 {
entry:
  %t1 = spawn @worker(%n)
  %t2 = spawn @worker(%n)
  join %t1
  join %t2
  %v = load @g
  ret %v
}
"""


@pytest.mark.parametrize("seed", [0, 1, 7, 42])
def test_locked_counter_is_exact(seed):
    r = run(COUNTER, args=(25,), seed=seed)
    assert r.outcome == "success"
    assert r.exit_value == 50


def test_thread_stats_recorded():
    r = run(COUNTER, args=(5,))
    assert len(r.thread_stats) == 3  # main + 2 workers
    workers = [s for tid, s in r.thread_stats.items() if tid != 1]
    assert all(s.lock_ops == 10 for s in workers)


def test_determinism_same_seed():
    r1 = run(COUNTER, args=(10,), seed=3)
    r2 = run(COUNTER, args=(10,), seed=3)
    assert r1.duration == r2.duration
    assert r1.instructions_executed == r2.instructions_executed


DEADLOCK = """
module t
global la: lock
global lb: lock

func ba(d: i64) -> void {
entry:
  lock @lb
  delay %d
  lock @la
  unlock @la
  unlock @lb
  ret
}

func main(d: i64) -> void {
entry:
  %t = spawn @ba(%d)
  lock @la
  delay %d
  lock @lb
  unlock @lb
  unlock @la
  join %t
  ret
}
"""


def test_deadlock_detected_with_cycle():
    r = run(DEADLOCK, args=(50_000,))
    assert r.outcome == "deadlock"
    assert isinstance(r.failure, DeadlockReport)
    assert len(r.failure.cycle) == 2
    tids = {e.tid for e in r.failure.cycle}
    assert len(tids) == 2
    for e in r.failure.cycle:
        assert e.waiting_for_lock in [x for other in r.failure.cycle for x in other.held_locks]
        assert e.since > 0


def test_self_deadlock_nonrecursive_mutex():
    r = run(
        """
module t
global mu: lock
func main() -> void {
entry:
  lock @mu
  lock @mu
  unlock @mu
  ret
}
"""
    )
    assert r.outcome == "deadlock"
    assert "self-deadlock" in r.failure.detail


def test_hang_without_lock_cycle():
    # joining a thread that never finishes -> global stall, not deadlock
    r = run(
        """
module t
global mu: lock
func stuck() -> void {
entry:
  lock @mu
  ret
}
func main() -> void {
entry:
  lock @mu
  %t = spawn @stuck()
  join %t
  unlock @mu
  ret
}
"""
    )
    assert r.outcome == "hang"


def test_lock_handoff_fifo():
    # a released lock goes to the first waiter
    src = """
module t
global mu: lock
global order: i64 = 0
func taker(tag: i64) -> void {
entry:
  lock @mu
  %v = load @order
  %v10 = mul %v, 10
  %v2 = add %v10, %tag
  store %v2, @order
  unlock @mu
  ret
}
func main() -> i64 {
entry:
  lock @mu
  %t1 = spawn @taker(1)
  delay 1000
  %t2 = spawn @taker(2)
  delay 1000
  unlock @mu
  join %t1
  join %t2
  %v = load @order
  ret %v
}
"""
    m = parse_module(src)
    r = Machine(m, scheduler=FixedOrderScheduler([])).run("main")
    assert r.outcome == "success"
    assert r.exit_value == 12  # t1 acquired before t2


def test_sleep_overlaps():
    # two threads sleeping in parallel: total time ~ max, not sum
    r = run(
        """
module t
func sleeper(d: i64) -> void {
entry:
  delay %d
  ret
}
func main() -> void {
entry:
  %t1 = spawn @sleeper(100000)
  %t2 = spawn @sleeper(100000)
  join %t1
  join %t2
  ret
}
"""
    )
    assert r.outcome == "success"
    assert r.duration < 150_000


def test_join_already_finished():
    r = run(
        """
module t
func quick() -> void {
entry:
  ret
}
func main() -> void {
entry:
  %t = spawn @quick()
  delay 100000
  join %t
  ret
}
"""
    )
    assert r.outcome == "success"


def test_thread_positions():
    src = """
module t
func main() -> void {
entry:
  delay 1000
  ret
}
"""
    m = parse_module(src)
    machine = Machine(m)
    machine.run("main")
    positions = machine.thread_positions()
    assert positions == {1: 0}  # finished


def test_unsynchronized_counter_can_lose_updates():
    # the same counter without the lock and with a read-to-write window:
    # some schedules drop updates (the classic lost-update race)
    racy = COUNTER.replace("  lock @mu\n", "").replace(
        "  unlock @mu\n", ""
    ).replace("  %v2 = add %v, 1\n", "  delay 500\n  %v2 = add %v, 1\n")
    results = {run(racy, args=(8,), seed=s).exit_value for s in range(12)}
    assert any(v < 16 for v in results)  # updates were lost under overlap
