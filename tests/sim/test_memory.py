"""Flat address space: allocation, faults, red zones."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import I64
from repro.sim.memory import NULL_GUARD_SIZE, GuestFault, Memory


def test_allocation_and_rw():
    mem = Memory()
    obj = mem.allocate(16, "heap", 1, I64)
    mem.write_word(obj.base, 42)
    assert mem.read_word(obj.base) == 42
    assert mem.read_word(obj.base + 8) == 0  # zero-initialized


def test_null_guard():
    mem = Memory()
    with pytest.raises(GuestFault) as err:
        mem.read_word(0)
    assert err.value.kind == "null"
    with pytest.raises(GuestFault):
        mem.write_word(NULL_GUARD_SIZE - 8, 1)


def test_unmapped_fault():
    mem = Memory()
    with pytest.raises(GuestFault) as err:
        mem.read_word(0x100000)
    assert err.value.kind == "unmapped"


def test_red_zone_between_objects():
    mem = Memory()
    a = mem.allocate(8, "heap", 1, I64)
    mem.allocate(8, "heap", 2, I64)
    with pytest.raises(GuestFault):
        mem.read_word(a.end)  # one past the end lands in the gap


def test_use_after_free():
    mem = Memory()
    obj = mem.allocate(8, "heap", 1, I64)
    mem.free(obj.base)
    with pytest.raises(GuestFault) as err:
        mem.read_word(obj.base)
    assert err.value.kind == "use-after-free"


def test_double_free():
    mem = Memory()
    obj = mem.allocate(8, "heap", 1, I64)
    mem.free(obj.base)
    with pytest.raises(GuestFault) as err:
        mem.free(obj.base)
    assert err.value.kind == "use-after-free"


def test_free_of_interior_pointer():
    mem = Memory()
    obj = mem.allocate(16, "heap", 1, I64)
    with pytest.raises(GuestFault) as err:
        mem.free(obj.base + 8)
    assert err.value.kind == "oob"


def test_free_of_stack_object_rejected():
    mem = Memory()
    obj = mem.allocate(8, "stack", 1, I64)
    with pytest.raises(GuestFault):
        mem.free(obj.base)


def test_misaligned_access():
    mem = Memory()
    obj = mem.allocate(16, "heap", 1, I64)
    with pytest.raises(GuestFault) as err:
        mem.read_word(obj.base + 3)
    assert err.value.kind == "oob"


def test_released_stack_slot_is_dangling():
    mem = Memory()
    obj = mem.allocate(8, "stack", 1, I64)
    mem.release_stack(obj)
    with pytest.raises(GuestFault):
        mem.read_word(obj.base)


def test_object_at_lookup():
    mem = Memory()
    a = mem.allocate(24, "heap", 5, I64)
    assert mem.object_at(a.base) is a
    assert mem.object_at(a.base + 16) is a
    assert mem.object_at(a.base + 24) is None


@given(sizes=st.lists(st.integers(min_value=1, max_value=256), min_size=1, max_size=40))
def test_objects_never_overlap(sizes):
    mem = Memory()
    objs = [mem.allocate(s, "heap", i, None) for i, s in enumerate(sizes)]
    spans = sorted((o.base, o.end) for o in objs)
    for (b1, e1), (b2, e2) in zip(spans, spans[1:]):
        assert e1 <= b2  # disjoint, in address order


@given(
    writes=st.lists(
        st.tuples(st.integers(0, 7), st.integers(-(2**31), 2**31)),
        min_size=1,
        max_size=64,
    )
)
def test_last_write_wins(writes):
    mem = Memory()
    obj = mem.allocate(64, "heap", 1, None)
    model = {}
    for slot, value in writes:
        mem.write_word(obj.base + slot * 8, value)
        model[slot] = value
    for slot, value in model.items():
        assert mem.read_word(obj.base + slot * 8) == value
