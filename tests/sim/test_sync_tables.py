"""Sync-table regressions surfaced by the ``sim`` check stage."""

from repro.sim.sync import LockTable, RwLockTable

A, B = 0x1000, 0x1008


def test_lock_handoff_repoints_remaining_wait_edges():
    # t1 holds A; t2 and t3 queue behind it; t3 also holds B.  When t1
    # hands A to t2, t3's wait-for edge must follow the new owner —
    # otherwise the cycle closed by t2 blocking on B is invisible.
    table = LockTable()
    assert table.try_acquire(A, 1)
    assert table.try_acquire(B, 3)
    assert not table.try_acquire(A, 2)
    table.add_waiter(A, 2, instr_uid=10, now=1)
    assert not table.try_acquire(A, 3)
    table.add_waiter(A, 3, instr_uid=11, now=2)

    assert table.release(A, 1) == 2
    edge = table.waiting_edge(3)
    assert edge is not None and edge.owner == 2
    assert edge.instr_uid == 11  # the blocked site survives re-pointing

    assert not table.try_acquire(B, 2)
    table.add_waiter(B, 2, instr_uid=12, now=3)
    cycle = table.find_deadlock_cycle(2)
    assert cycle is not None
    assert {e.waiter for e in cycle} == {2, 3}


def test_rwlock_grant_repoints_ungranted_waiters():
    # writer t1 holds; a reader and a writer queue.  The grant releases
    # the reader batch only — the still-waiting writer's edge must move
    # from the departed writer to the reader now holding the lock.
    table = RwLockTable()
    assert table.try_wrlock(A, 1)
    assert not table.try_rdlock(A, 2)
    table.add_waiter(A, 2, "rd", instr_uid=20, now=1)
    assert not table.try_wrlock(A, 3)
    table.add_waiter(A, 3, "wr", instr_uid=21, now=2)

    assert table.release(A, 1) == [2]
    edge = table.pending_edges()[3]
    assert edge.owner == 2
