"""Directed scheduling (repro.validate's substrate) and pick fairness.

The DirectedScheduler must be able to *force* a diagnosed order onto a
seed that normally avoids it, and to *forbid* the order on a seed that
normally hits it — without hanging when the directive is unsatisfiable.
Plus the round-robin fairness regression: ``Scheduler.pick`` must resume
from the successor position when ``_last`` left the runnable set, not
restart at ``ordered[0]``.
"""

import pytest

from repro.ir import parse_module
from repro.ir.instructions import Free, Load
from repro.sim import (
    DirectedScheduler,
    ForceOrder,
    Machine,
    RandomScheduler,
    Scheduler,
    SerializeAfter,
    SerializeFunction,
)

# use-after-free race: main frees %x while worker may still read it
# through @g (published before the spawn, so %p is never null)
UAF = """
module t
global g: ptr<i64> = null

func worker() -> void {
entry:
  %p = load @g
  %v = load %p
  ret
}

func main() -> void {
entry:
  %x = malloc i64
  store 42, %x
  store %x, @g
  %t = spawn @worker()
  free %x
  join %t
  ret
}
"""

# symmetric double free: both killers can load the same non-null @g
DOUBLE_FREE = """
module t
global g: ptr<i64> = null

func killer() -> void {
entry:
  %p = load @g
  %c = cmp ne %p, null
  cbr %c, doit, out
doit:
  free %p
  store null, @g
  br out
out:
  ret
}

func main() -> void {
entry:
  %x = malloc i64
  store %x, @g
  %t1 = spawn @killer()
  %t2 = spawn @killer()
  join %t1
  join %t2
  ret
}
"""


def _uaf_uids(module):
    free_uid = next(
        i.uid
        for i in module.functions["main"].instructions()
        if isinstance(i, Free)
    )
    use_uid = next(
        i.uid
        for i in module.functions["worker"].instructions()
        if isinstance(i, Load) and i.name == "v"
    )
    return free_uid, use_uid


def _scan_seeds(src, n=60):
    """Map seed -> outcome under the free-running RandomScheduler."""
    module = parse_module(src)
    outcomes = {}
    for seed in range(n):
        m = Machine(parse_module(src), scheduler=RandomScheduler(seed))
        outcomes[seed] = m.run("main", ()).outcome
    return module, outcomes


def _directed(src, seed, directive, mean_quantum=24):
    module = parse_module(src)
    sched = DirectedScheduler(seed, directive, mean_quantum)
    result = Machine(module, scheduler=sched).run("main", ())
    return module, result, sched


def test_force_order_reproduces_on_a_benign_seed():
    module, outcomes = _scan_seeds(UAF)
    benign = next(s for s, o in outcomes.items() if o == "success")
    free_uid, use_uid = _uaf_uids(module)
    _, result, sched = _directed(UAF, benign, ForceOrder((free_uid, use_uid)))
    assert result.outcome == "crash"
    assert result.failure.failing_uid == use_uid
    assert sched.satisfied
    assert sched.releases == 0


def test_force_order_prevents_on_a_failing_seed():
    module, outcomes = _scan_seeds(UAF)
    failing = next(s for s, o in outcomes.items() if o == "crash")
    free_uid, use_uid = _uaf_uids(module)
    _, result, sched = _directed(UAF, failing, ForceOrder((use_uid, free_uid)))
    assert result.outcome == "success"
    assert sched.satisfied


@pytest.mark.parametrize("mean_quantum", [1, 24, 200])
def test_force_order_holds_through_long_quanta(mean_quantum):
    # regression for the barrier_uids hook: a geometric quantum (up to
    # 16x the mean) must not blow *through* a gated uid between
    # filter_runnable rounds — every quantum truncates at a barrier
    module, outcomes = _scan_seeds(UAF)
    free_uid, use_uid = _uaf_uids(module)
    for seed, _outcome in list(outcomes.items())[:20]:
        _, result, sched = _directed(
            UAF, seed, ForceOrder((free_uid, use_uid)), mean_quantum
        )
        assert result.outcome == "crash", seed
        assert result.failure.failing_uid == use_uid
        assert sched.satisfied


def test_serialize_after_prevents_the_race():
    module, outcomes = _scan_seeds(UAF)
    failing = [s for s, o in outcomes.items() if o == "crash"]
    assert failing, "the UAF module never failed in the scan"
    free_uid, _use_uid = _uaf_uids(module)
    for seed in failing[:10]:
        _, result, _ = _directed(
            UAF, seed, SerializeAfter(free_uid, frozenset({"worker"}))
        )
        assert result.outcome == "success", seed


def test_serialize_function_prevents_symmetric_race():
    module, outcomes = _scan_seeds(DOUBLE_FREE)
    failing = [s for s, o in outcomes.items() if o != "success"]
    assert failing, "the double-free module never failed in the scan"
    for seed in failing[:10]:
        _, result, _ = _directed(
            DOUBLE_FREE, seed, SerializeFunction("killer")
        )
        assert result.outcome == "success", seed


def test_unsatisfiable_order_degrades_to_a_free_run():
    # forcing free before the publishing store is impossible (both in
    # main, program order store -> free): force_release must unwedge the
    # machine instead of hanging, leaving the order unsatisfied
    module = parse_module(UAF)
    free_uid, _ = _uaf_uids(module)
    store_uid = module.functions["main"].entry.instructions[2].uid
    _, result, sched = _directed(UAF, 0, ForceOrder((free_uid, store_uid)))
    assert result.outcome in ("success", "crash")  # finished, either way
    assert sched.releases > 0
    assert not sched.satisfied


def test_directed_free_run_matches_random_scheduler():
    # with no directive, the DirectedScheduler consumes the RNG stream
    # exactly like RandomScheduler: byte-identical executions
    for seed in range(10):
        a = Machine(parse_module(UAF), scheduler=RandomScheduler(seed)).run(
            "main", ()
        )
        b = Machine(
            parse_module(UAF), scheduler=DirectedScheduler(seed, None)
        ).run("main", ())
        assert (a.outcome, a.duration, a.instructions_executed) == (
            b.outcome, b.duration, b.instructions_executed,
        )


# -- Scheduler.pick fairness -------------------------------------------------


def test_pick_resumes_from_successor_when_last_left():
    s = Scheduler()
    assert s.pick([1, 2, 9])[0] == 1
    assert s.pick([1, 2, 9])[0] == 2
    # 2 blocked; the successor position is 9 — the old code restarted
    # at ordered[0] and handed 1 the CPU again
    assert s.pick([1, 9])[0] == 9


def test_pick_no_starvation_under_low_tid_churn():
    # two low tids blocking and waking in lockstep must not starve the
    # high tid: every window of picks includes it
    s = Scheduler()
    picks = []
    runnable_cycle = [[1, 2, 9], [1, 9], [2, 9], [1, 2, 9]]
    for i in range(40):
        runnable = runnable_cycle[i % len(runnable_cycle)]
        picks.append(s.pick(list(runnable))[0])
    count = picks.count(9)
    assert count >= len(picks) // 4, picks


def test_pick_wraps_past_the_highest_tid():
    s = Scheduler()
    assert s.pick([3, 7])[0] == 3
    assert s.pick([3, 7])[0] == 7
    # 7 exits while a new higher tid arrives: wrap to the lowest
    assert s.pick([1, 3])[0] == 1
