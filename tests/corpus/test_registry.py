"""Corpus registry invariants: 67 bugs, 17 systems, the paper's split."""

import pytest

from repro.corpus import (
    all_bugs,
    bug,
    bugs,
    bugs_by_system,
    snorlax_bugs,
    systems,
    table_bugs,
)
from repro.errors import CorpusError


def test_67_bugs_total():
    assert len(all_bugs()) == 67
    # The paper's corpus (tables 1-3) is untouched by the extension.
    assert len(table_bugs(1) + table_bugs(2) + table_bugs(3)) == 54


def test_17_systems():
    assert len(systems()) == 17
    assert set(systems()) == {
        "mysql", "httpd", "memcached", "sqlite", "transmission", "pbzip2",
        "aget", "jdk", "derby", "groovy", "dbcp", "log4j", "lucene",
        "nginx", "redis", "postgres", "zookeeper",
    }


def test_table_split_matches_paper_structure():
    assert len(table_bugs(1)) == 9  # deadlocks
    assert len(table_bugs(2)) == 18  # order violations
    assert len(table_bugs(3)) == 27  # atomicity violations
    for spec in table_bugs(1):
        assert spec.ground_truth.pattern == "deadlock"
    for spec in table_bugs(2):
        assert spec.ground_truth.pattern in ("WR", "RW", "WW")
    for spec in table_bugs(3):
        assert spec.ground_truth.pattern in ("RWR", "WWR", "RWW", "WRW")


def test_extension_table_covers_new_primitives():
    ext = table_bugs(4)
    assert len(ext) == 13
    assert {s.system for s in ext} == {"nginx", "redis", "postgres", "zookeeper"}
    # Every extension bug names at least one primitive, and together
    # they cover the whole new vocabulary.
    assert all(s.primitives for s in ext)
    assert {p for s in ext for p in s.primitives} == {
        "condvar", "rwlock", "sema", "barrier", "mutex",
    }


def test_bugs_query_filters():
    assert len(bugs(primitives="condvar")) == 3
    assert len(bugs(primitives="rwlock")) == 3
    assert len(bugs(primitives="sema")) == 3
    assert len(bugs(primitives="barrier")) == 2
    # "mutex" covers both the original table-1 deadlocks and the new
    # three-lock chains.
    mutex = bugs(primitives="mutex")
    assert len(mutex) == 11
    assert len(bugs(primitives="mutex", table=4)) == 2
    assert len(bugs(primitives=("condvar", "barrier"))) == 5
    assert bugs(system="redis", kind="deadlock")[0].bug_id == "redis-2988"
    assert bugs() == all_bugs()


def test_original_deadlocks_tagged_mutex():
    for spec in table_bugs(1):
        assert spec.primitives == ("mutex",)


def test_snorlax_eval_set_is_the_papers_11():
    evals = snorlax_bugs()
    assert len(evals) == 11
    assert {s.bug_id for s in evals} == {
        "pbzip2-n/a", "aget-n/a", "transmission-1818", "memcached-127",
        "httpd-25520", "httpd-21287", "mysql-169", "mysql-644",
        "mysql-791", "mysql-3596", "sqlite-1672",
    }
    # the paper evaluates Snorlax only on C/C++ systems
    assert all(s.language == "C/C++" for s in evals)


def test_java_systems_in_cih_study_only():
    java = [s for s in all_bugs() if s.language == "Java"]
    assert java and all(not s.snorlax_eval for s in java)
    assert {s.system for s in java} == {
        "jdk", "derby", "groovy", "dbcp", "log4j", "lucene", "zookeeper",
    }


def test_bug_ids_unique():
    ids = [s.bug_id for s in all_bugs()]
    assert len(ids) == len(set(ids))


def test_lookup_by_id_and_system():
    spec = bug("pbzip2-n/a")
    assert spec.system == "pbzip2"
    assert len(bugs_by_system("mysql")) == 8
    with pytest.raises(CorpusError):
        bug("nonexistent-1")


def test_every_bug_has_dt_targets_in_band():
    for spec in all_bugs():
        assert spec.target_dt_us
        for dt in spec.target_dt_us:
            assert 100 <= dt <= 4600, spec.bug_id


def test_atomicity_bugs_declare_two_gaps():
    for spec in table_bugs(3):
        assert len(spec.target_dt_us) == 2
    for spec in table_bugs(1) + table_bugs(2):
        assert len(spec.target_dt_us) == 1


def test_module_cached_but_fresh_builds_differ():
    spec = bug("aget-n/a")
    assert spec.module() is spec.module()
    fresh = spec.fresh_module()
    assert fresh is not spec.module()
    assert fresh.instruction_count() == spec.module().instruction_count()
