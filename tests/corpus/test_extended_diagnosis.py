"""Extension: Lazy Diagnosis on bugs beyond the paper's 11-bug C/C++ set.

The paper evaluates Snorlax only on C/C++ systems; nothing in Lazy
Diagnosis is language-specific (ARM ETM / JVM traces would serve, §2.3).
Our Java app models run on the same substrate, so the pipeline should
diagnose them identically — a future-work claim we can actually test.
"""

import pytest

from repro.bench import run_accuracy
from repro.corpus import bug

EXTRA_BUGS = [
    "jdk-7011862",    # Java, RW read-before-init
    "derby-2861",     # Java, RWR
    "log4j-1507",     # Java, WR use-after-free
    "dbcp-44",        # Java, deadlock
    "mysql-2011",     # C/C++ deadlock outside the 11-bug eval set
    "memcached-271",  # C/C++ RW outside the eval set
]


@pytest.mark.parametrize("bug_id", EXTRA_BUGS)
def test_diagnosis_beyond_eval_set(bug_id):
    outcome = run_accuracy(bug(bug_id))
    assert outcome.diagnosed, f"{bug_id}: no diagnosis"
    assert outcome.exact, f"{bug_id}: wrong events/order"
    assert outcome.f1 == 1.0
    assert outcome.ordering_accuracy == 100.0
