"""Flat-scheduler regression goldens for the original 54-bug corpus.

The scheduler/scenario API redesign (``SchedulerPolicy``) must not
perturb the production scheduling path: under the default flat random
scheduler, every pre-extension bug's behavioral digest — per-seed
outcome, virtual duration, instruction count, failing uid — must stay
byte-identical to the committed goldens.

Regenerate (only after an *intentional* scheduling change)::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.bench import flat_schedule_digest
    from repro.corpus import all_bugs
    digests = {s.bug_id: flat_schedule_digest(s)
               for s in all_bugs() if s.table != 4}
    open("tests/corpus/golden_flat_digests.json", "w").write(
        json.dumps(digests, indent=2, sort_keys=True) + "\n")
    EOF
"""

import json
from pathlib import Path

import pytest

from repro.bench import flat_schedule_digest
from repro.corpus import all_bugs

GOLDENS = json.loads(
    (Path(__file__).parent / "golden_flat_digests.json").read_text()
)


def test_goldens_cover_the_original_corpus():
    original = {s.bug_id for s in all_bugs() if s.table != 4}
    assert set(GOLDENS) == original
    assert len(GOLDENS) == 54


@pytest.mark.parametrize(
    "bug_id", sorted(GOLDENS), ids=lambda b: b.replace("/", "_")
)
def test_flat_scheduler_digest_unchanged(bug_id):
    spec = next(s for s in all_bugs() if s.bug_id == bug_id)
    assert flat_schedule_digest(spec) == GOLDENS[bug_id], (
        f"{bug_id}: the default-scheduler interleaving changed — if this "
        "is intentional, regenerate tests/corpus/golden_flat_digests.json "
        "(see module docstring)"
    )
