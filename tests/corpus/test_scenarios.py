"""The programmatic scenario generators (``repro.corpus.scenarios``).

Scenarios are correct-by-construction programs: under *any* scheduling
policy, every seed must run to success.  These tests pin that contract
plus the spec plumbing (frozen ScenarioSpec, policy pass-through,
deterministic workloads, eager knob validation).
"""

import pytest

from repro.api import ScenarioSpec, SchedulerPolicy
from repro.corpus import SCENARIOS, async_pipeline, db_pool, producer_consumer

POLICIES = [
    SchedulerPolicy(),
    SchedulerPolicy(kind="hierarchical"),
    SchedulerPolicy(kind="rr"),
]


@pytest.mark.parametrize("gen", list(SCENARIOS.values()), ids=list(SCENARIOS))
@pytest.mark.parametrize("policy", POLICIES, ids=[p.kind for p in POLICIES])
def test_scenarios_succeed_under_every_policy(gen, policy):
    spec = gen(policy=policy)
    client = spec.client(tracing=False)
    for seed in range(4):
        result = client.run_untraced(seed)
        assert result.outcome == "success", (spec.name, seed, result.outcome)


@pytest.mark.parametrize("gen", list(SCENARIOS.values()), ids=list(SCENARIOS))
def test_scenario_specs_are_frozen_and_rebuildable(gen):
    spec = gen()
    assert isinstance(spec, ScenarioSpec)
    with pytest.raises(AttributeError):
        spec.name = "mutated"
    # builder re-creates an equivalent, finalized module on every call
    m1, m2 = spec.module(), spec.module()
    assert m1 is not m2
    assert m1.finalized and m2.finalized
    assert sorted(m1.functions) == sorted(m2.functions)


@pytest.mark.parametrize("gen", list(SCENARIOS.values()), ids=list(SCENARIOS))
def test_workloads_are_seed_deterministic(gen):
    spec = gen()
    for seed in range(8):
        assert spec.workload(seed) == gen().workload(seed)
    assert spec.workload(1) != spec.workload(2)


def test_client_carries_the_scenario_policy():
    policy = SchedulerPolicy(kind="hierarchical", vcpus=3)
    spec = db_pool(policy=policy)
    assert spec.policy is policy
    client = spec.client(tracing=False)
    assert client.policy is policy
    assert client.entry == "main"


def test_structural_knobs_shape_the_module():
    spec = producer_consumer(producers=3, consumers=2, items_per_producer=4)
    main = spec.module().functions["main"]
    spawns = [i for i in main.instructions() if type(i).__name__ == "Spawn"]
    assert len(spawns) == 5  # 3 producers + 2 consumers

    deep = async_pipeline(stages=4)
    main = deep.module().functions["main"]
    spawns = [i for i in main.instructions() if type(i).__name__ == "Spawn"]
    assert len(spawns) == 5  # 4 stages + the monitor


def test_knob_validation_is_eager():
    with pytest.raises(ValueError, match="evenly"):
        producer_consumer(producers=1, consumers=2, items_per_producer=3)
    with pytest.raises(ValueError):
        producer_consumer(capacity=0)
    with pytest.raises(ValueError):
        db_pool(pool_size=0)
    with pytest.raises(ValueError):
        async_pipeline(stages=0)


def test_single_stage_pipeline_still_terminates():
    spec = async_pipeline(stages=1, batches=3)
    client = spec.client(tracing=False)
    for seed in range(3):
        assert client.run_untraced(seed).outcome == "success"
