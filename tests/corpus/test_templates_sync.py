"""Extension corpus (table 4): condvar/rwlock/sema/barrier bug classes.

Each class must hold up end to end: both outcomes under the production
scheduler, the right failure kind (including the lost wakeup's *hang* —
the one class whose manifestation is silence, not a crash), an exact
top-ranked-pattern diagnosis, and a validated ground truth (forced
schedule reproduces, inverse schedule passes).
"""

import pytest

from repro.bench import run_accuracy
from repro.corpus import bug, bugs
from repro.runtime import SnorlaxClient
from repro.validate.engine import validate_ground_truth

# One representative per template class for the expensive checks.
REPRESENTATIVES = {
    "redis-1011": "hang",        # lost-wakeup (condvar)
    "nginx-1384": "crash",       # rw-race (rwlock)
    "postgres-6412": "crash",    # sema-underflow
    "zookeeper-3006": "crash",   # barrier-phase
    "redis-2988": "deadlock",    # lock-chain (3 mutexes)
}

ALL_EXTENSION_BUGS = [s.bug_id for s in bugs(table=4)]


@pytest.mark.parametrize("bug_id", sorted(REPRESENTATIVES))
def test_ground_truth_resolves_to_ordered_uids(bug_id):
    spec = bug(bug_id)
    uids = spec.target_uids()
    assert len(uids) == len(spec.ground_truth.events)
    module = spec.module()
    for uid, ev in zip(uids, spec.ground_truth.events):
        instr = module.instruction(uid)
        assert instr.loc.file == ev.file and instr.loc.line == ev.line


@pytest.mark.parametrize("bug_id", sorted(REPRESENTATIVES))
def test_bug_has_failing_and_successful_seeds(bug_id):
    spec = bug(bug_id)
    client = SnorlaxClient(spec.module(), spec.workload, tracing=False)
    outcomes = set()
    for seed in range(40):
        run = client.run_once(seed)
        outcomes.add(run.failed)
        if outcomes == {True, False}:
            break
    assert outcomes == {True, False}, f"{bug_id}: needs both outcomes"


@pytest.mark.parametrize("bug_id", sorted(REPRESENTATIVES))
def test_failure_kind_matches_class(bug_id):
    spec = bug(bug_id)
    client = SnorlaxClient(spec.module(), spec.workload, tracing=False)
    run = client.find_runs(True, 1)[0]
    assert run.failure.kind == REPRESENTATIVES[bug_id]


def test_lock_chain_truth_repeats_the_shared_routine():
    # All three threads run the same function: the 4-event cycle
    # signature names each lock site twice.
    uids = bug("redis-2988").target_uids()
    assert len(uids) == 4
    assert len(set(uids)) == 2


@pytest.mark.parametrize("bug_id", ALL_EXTENSION_BUGS)
def test_extension_bug_diagnoses_exactly(bug_id):
    outcome = run_accuracy(bug(bug_id))
    assert outcome.diagnosed, f"{bug_id}: no diagnosis"
    assert outcome.exact, f"{bug_id}: wrong events/order"
    assert outcome.ordering_accuracy == 100.0
    if bug(bug_id).kind != "deadlock":
        assert outcome.f1 == 1.0


@pytest.mark.parametrize("bug_id", sorted(REPRESENTATIVES))
def test_extension_class_ground_truth_validates(bug_id):
    outcome, _seed = validate_ground_truth(bug(bug_id))
    assert outcome.status == "validated", f"{bug_id}: {outcome}"
    modes = {w.mode: w.outcome for w in outcome.witnesses}
    assert modes["inverse"] == "success"
    assert modes["forced"] in ("crash", "assert", "hang", "deadlock")
