"""App kit: profiles, cold-code synthesis, warm helpers."""

from repro.corpus.appkit import PROFILES, add_cold_code, add_warm_worker, profile
from repro.ir import IRBuilder, Module
from repro.sim import Machine


def test_profiles_cover_17_systems():
    assert len(PROFILES) == 17
    assert profile("mysql").kloc == 650
    assert profile("aget").language == "C/C++"
    assert profile("jdk").language == "Java"
    # Extension-corpus systems (table 4).
    assert profile("nginx").language == "C/C++"
    assert profile("zookeeper").language == "Java"


def test_cold_function_count_scales():
    assert profile("mysql").cold_function_count > profile("memcached").cold_function_count
    assert profile("pbzip2").cold_function_count >= 2


def test_cold_code_builds_and_verifies():
    m = Module("t")
    b = IRBuilder(m)
    n = add_cold_code(m, b, profile("memcached"))
    # needs at least one runnable entry to finalize around
    b.begin_function("main", __import__("repro.ir.types", fromlist=["VOID"]).VOID, [])
    b.ret()
    m.finalize()
    assert n == profile("memcached").cold_function_count
    cold_fns = [f for f in m.functions.values() if f.name.startswith("memcached_cold_")]
    assert len(cold_fns) == n


def test_cold_code_deterministic():
    def build():
        m = Module("t")
        b = IRBuilder(m)
        add_cold_code(m, b, profile("sqlite"))
        from repro.ir.types import VOID

        b.begin_function("main", VOID, [])
        b.ret()
        m.finalize()
        from repro.ir import print_module

        return print_module(m)

    assert build() == build()


def test_warm_worker_executes_with_branches():
    from repro.ir.types import I64, VOID

    m = Module("t")
    b = IRBuilder(m)
    add_warm_worker(b, "spin", "x.c", 10)
    b.begin_function("main", VOID, [])
    b.call("spin", [b.i64(5)])
    b.ret()
    m.finalize()
    r = Machine(m).run("main")
    assert r.outcome == "success"
    assert r.total_branches() >= 3  # the warm loop's conditionals
