"""Bug templates: every corpus bug builds, verifies, resolves its ground
truth, and produces both failing and successful executions."""

import pytest

from repro.corpus import all_bugs, bug, snorlax_bugs
from repro.runtime import SnorlaxClient

# one representative per template kind for the expensive checks
REPRESENTATIVES = [
    "pbzip2-n/a",       # WR use-after-free
    "transmission-1818",  # RW read-before-init
    "httpd-21287",      # WW double free
    "mysql-3596",       # RWR
    "memcached-127",    # WWR
    "httpd-25520",      # RWW
    "aget-n/a",         # WRW
    "sqlite-1672",      # deadlock
]


@pytest.mark.parametrize("bug_id", REPRESENTATIVES)
def test_ground_truth_resolves_to_ordered_uids(bug_id):
    spec = bug(bug_id)
    uids = spec.target_uids()
    assert len(uids) == len(spec.ground_truth.events)
    assert all(u > 0 for u in uids)
    module = spec.module()
    for uid, ev in zip(uids, spec.ground_truth.events):
        instr = module.instruction(uid)
        assert instr.loc.file == ev.file and instr.loc.line == ev.line


@pytest.mark.parametrize("bug_id", REPRESENTATIVES)
def test_bug_has_failing_and_successful_seeds(bug_id):
    spec = bug(bug_id)
    client = SnorlaxClient(spec.module(), spec.workload, tracing=False)
    outcomes = set()
    for seed in range(40):
        run = client.run_once(seed)
        outcomes.add(run.failed)
        if outcomes == {True, False}:
            break
    assert outcomes == {True, False}, f"{bug_id}: needs both outcomes"


@pytest.mark.parametrize("bug_id", REPRESENTATIVES)
def test_failure_kind_matches_template(bug_id):
    spec = bug(bug_id)
    client = SnorlaxClient(spec.module(), spec.workload, tracing=False)
    run = client.find_runs(True, 1)[0]
    kind = run.failure.kind
    if spec.ground_truth.pattern == "deadlock":
        assert kind == "deadlock"
    else:
        assert kind in ("crash", "assert")


def test_all_corpus_modules_build_and_verify():
    for spec in all_bugs():
        m = spec.module()  # builds + finalizes (verifier runs)
        assert m.finalized
        assert m.instruction_count() > 50


def test_cold_code_scales_with_system_size():
    big = bug("mysql-169").module().instruction_count()
    small = bug("pbzip2-n/a").module().instruction_count()
    assert big > 10 * small


def test_workloads_are_deterministic():
    spec = bug("memcached-127")
    assert spec.workload(7) == spec.workload(7)
    assert spec.workload(7) != spec.workload(8)


def test_distinct_bugs_have_distinct_vocabulary():
    m1 = bug("pbzip2-n/a").module()
    m2 = bug("mysql-169").module()
    assert set(m1.structs) != set(m2.structs)
    assert set(m1.functions) != set(m2.functions)


def test_snorlax_bug_workloads_fail_within_attempt_budget():
    # the paper reproduced every bug in < 5000 executions; our corpus is
    # far denser, but never degenerate (all-failing would starve step 8)
    for spec in snorlax_bugs():
        client = SnorlaxClient(spec.module(), spec.workload, tracing=False)
        fails = sum(1 for seed in range(30) if client.run_once(seed).failed)
        assert 1 <= fails <= 29, f"{spec.bug_id}: fail rate {fails}/30"
