"""Encoder unit behavior: TNT batching, PSB cadence, return compression,
timing catch-up, snapshot suffixes."""

from repro.pt.encoder import ThreadEncoder
from repro.pt.packets import (
    FupPacket,
    MtcPacket,
    PsbPacket,
    TipPacket,
    TntPacket,
    TscPacket,
    parse_packets,
)
from repro.pt.timing import TraceConfig


def _encoder(**kw):
    return ThreadEncoder(1, TraceConfig(**kw))


def _packets(enc, time=10_000, stop=7):
    data = enc.snapshot_bytes(time, stop)
    return list(parse_packets(data))


def test_start_emits_sync_anchor():
    enc = _encoder()
    enc.start(42, 1000)
    pkts = _packets(enc)
    assert isinstance(pkts[0], PsbPacket)
    assert isinstance(pkts[1], TscPacket) and pkts[1].time == 1000
    assert isinstance(pkts[2], FupPacket) and pkts[2].uid == 42


def test_tnt_bits_batch_six_per_packet():
    enc = _encoder()
    enc.start(1, 0)
    for k in range(7):
        enc.cond_branch(k % 2 == 0, 100 + k, 10 + k)
    pkts = [p for p in _packets(enc) if isinstance(p, TntPacket)]
    assert len(pkts) == 2
    assert len(pkts[0].bits) == 6
    assert pkts[0].bits == (True, False, True, False, True, False)
    assert len(pkts[1].bits) == 1  # the 7th, flushed by the snapshot


def test_return_compression_vs_uncompressed():
    enc = _encoder()
    enc.start(1, 0)
    enc.call(50, 10)  # push compression depth
    enc.ret(2, 20)  # compressed: a TNT bit
    assert enc.stats.compressed_rets == 1
    enc.ret(3, 30)  # depth exhausted: full TIP
    tips = [p for p in _packets(enc) if isinstance(p, TipPacket)]
    assert any(p.uid == 3 for p in tips)


def test_mtc_emitted_per_period_boundary():
    enc = _encoder(mtc_period_ns=1000)
    enc.start(1, 0)
    enc.work(5, 6, start=100, duration=4500, live_threads=1)
    mtcs = [p for p in _packets(enc, time=5000) if isinstance(p, MtcPacket)]
    assert len(mtcs) == 4  # boundaries at 1000, 2000, 3000, 4000


def test_work_region_sandwich():
    enc = _encoder(mtc_period_ns=1000)
    enc.start(1, 0)
    enc.work(5, 6, start=100, duration=2000, live_threads=1)
    pkts = _packets(enc, time=3000)
    fups = [p for p in pkts if isinstance(p, FupPacket)]
    assert any(p.uid == 5 for p in fups)  # region begin marker
    tips = [p for p in pkts if isinstance(p, TipPacket)]
    assert any(p.uid == 6 for p in tips)  # region end / resume


def test_psb_cadence_resets_compression():
    enc = _encoder(psb_interval_bytes=64)
    enc.start(1, 0)
    enc.call(50, 10)
    # enough indirect calls to exceed the 64-byte PSB interval
    for k in range(12):
        enc.indirect_call(100 + k, 20 + k)
    assert enc.stats.sync_packets >= 2  # initial + at least one cadence PSB
    # the pre-PSB call's return is no longer compressed
    enc.ret(2, 400)
    # the ret after a PSB reset emits a TIP, not a compressed bit... the
    # indirect calls bumped depth too, so just confirm a PSB happened and
    # encoding remains parseable
    assert _packets(enc, time=500)


def test_snapshot_does_not_disturb_live_encoder():
    enc = _encoder()
    enc.start(1, 0)
    enc.cond_branch(True, 5, 100)  # pending TNT bit
    before = enc.ring.total_written
    data1 = enc.snapshot_bytes(200, 9)
    assert enc.ring.total_written == before  # ring untouched
    enc.cond_branch(False, 6, 300)
    data2 = enc.snapshot_bytes(400, 9)
    assert len(data2) > len(data1) - 20  # encoder kept running


def test_ended_thread_snapshot_has_no_extra_suffix():
    enc = _encoder()
    enc.start(1, 0)
    enc.end(500)
    data = enc.snapshot_bytes(900, 3)
    pkts = list(parse_packets(data))
    fups = [p for p in pkts if isinstance(p, FupPacket)]
    assert fups[-1].uid == 0  # the clean-exit marker, not a stop position


def test_max_timing_gap_excludes_blocked_span():
    enc = _encoder(mtc_period_ns=1000)
    enc.start(1, 0)
    enc.cond_branch(True, 5, 2000)
    enc.block(7, 2500)
    enc.wake(8, 90_000)  # 87.5us blocked: must NOT count as a running gap
    enc.cond_branch(False, 9, 91_000)
    assert enc.stats.max_timing_gap_ns < 10_000


def test_stats_byte_accounting_consistent():
    enc = _encoder()
    enc.start(1, 0)
    for k in range(10):
        enc.cond_branch(True, k, 1000 * k)
    enc.work(5, 6, 20_000, 30_000, 2)
    s = enc.stats
    assert s.total_bytes == s.control_bytes + s.timing_bytes + s.sync_bytes
    assert s.total_bytes <= enc.ring.total_written + 16
    assert 0 < s.timing_fraction() < 1
