"""Binary packet encode/parse, including hypothesis round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceDecodeError
from repro.pt.packets import (
    PSB_BYTES,
    FupPacket,
    MtcPacket,
    PsbPacket,
    TipPacket,
    TntPacket,
    TscPacket,
    encode_fup,
    encode_mtc,
    encode_psb,
    encode_tip,
    encode_tnt,
    encode_tsc,
    find_psb,
    parse_packets,
)


def test_tnt_round_trip():
    data = encode_tnt([True, False, True])
    (pkt,) = parse_packets(data)
    assert isinstance(pkt, TntPacket)
    assert pkt.bits == (True, False, True)


def test_tnt_bit_limits():
    with pytest.raises(ValueError):
        encode_tnt([])
    with pytest.raises(ValueError):
        encode_tnt([True] * 7)


def test_tip_tsc_fup_mtc_round_trip():
    stream = encode_tip(12345) + encode_tsc(999_999) + encode_fup(77) + encode_mtc(300)
    pkts = list(parse_packets(stream))
    assert isinstance(pkts[0], TipPacket) and pkts[0].uid == 12345
    assert isinstance(pkts[1], TscPacket) and pkts[1].time == 999_999
    assert isinstance(pkts[2], FupPacket) and pkts[2].uid == 77
    assert isinstance(pkts[3], MtcPacket) and pkts[3].counter == 300 & 0xFF


def test_psb_detection():
    stream = b"\x00\x00" + encode_psb() + encode_tsc(1)
    off = find_psb(stream)
    assert off == 2
    pkts = list(parse_packets(stream, off))
    assert isinstance(pkts[0], PsbPacket)
    assert isinstance(pkts[1], TscPacket)


def test_pad_skipped():
    stream = b"\x00" * 5 + encode_mtc(1)
    pkts = list(parse_packets(stream))
    assert len(pkts) == 1


def test_truncated_trailing_packet_ends_iteration():
    stream = encode_mtc(1) + encode_tip(5)[:4]  # cut mid-TIP
    pkts = list(parse_packets(stream))
    assert len(pkts) == 1


def test_unknown_tag_raises():
    with pytest.raises(TraceDecodeError):
        list(parse_packets(b"\xff"))


def test_corrupt_psb_raises():
    stream = bytes([0x82, 0x03]) + b"\x00" * 20
    with pytest.raises(TraceDecodeError):
        list(parse_packets(stream))


_packet_strategy = st.one_of(
    st.lists(st.booleans(), min_size=1, max_size=6).map(encode_tnt),
    st.integers(0, 2**40).map(encode_tip),
    st.integers(0, 2**40).map(encode_tsc),
    st.integers(0, 2**40).map(encode_fup),
    st.integers(0, 255).map(encode_mtc),
    st.just(encode_psb()),
)


@given(st.lists(_packet_strategy, min_size=0, max_size=50))
def test_any_packet_sequence_round_trips(chunks):
    stream = b"".join(chunks)
    pkts = list(parse_packets(stream))
    assert len(pkts) == len(chunks)
    # re-encode and compare byte-for-byte
    out = bytearray()
    for pkt in pkts:
        if isinstance(pkt, TntPacket):
            out += encode_tnt(list(pkt.bits))
        elif isinstance(pkt, TipPacket):
            out += encode_tip(pkt.uid)
        elif isinstance(pkt, TscPacket):
            out += encode_tsc(pkt.time)
        elif isinstance(pkt, FupPacket):
            out += encode_fup(pkt.uid)
        elif isinstance(pkt, MtcPacket):
            out += encode_mtc(pkt.counter)
        elif isinstance(pkt, PsbPacket):
            out += encode_psb()
    assert bytes(out) == stream


def test_psb_is_16_bytes_alternating():
    assert len(PSB_BYTES) == 16
    assert PSB_BYTES == bytes([0x82, 0x02] * 8)
