"""PT driver: snapshots, breakpoints, overhead accounting, stats."""

from repro.ir import parse_module
from repro.pt import PTDriver, TraceConfig
from repro.pt.driver import overhead_fraction
from repro.sim import Machine, RandomScheduler

SRC = """
module t
global g: i64 = 0
func worker(n: i64) -> void {
entry:
  %i = alloca i64
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = cmp lt %iv, %n
  cbr %c, body, done
body:
  delay 50000
  store %iv, @g    @ w.c:10
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  ret
}
func main(n: i64) -> void {
entry:
  %t = spawn @worker(%n)
  join %t
  ret
}
"""


def _module():
    return parse_module(SRC)


def test_snapshot_contains_all_threads():
    m = _module()
    driver = PTDriver()
    machine = Machine(m, trace_driver=driver)
    machine.run("main", (3,))
    snap = driver.take_snapshot("x", machine.thread_positions(), machine.clock.now)
    assert set(snap.buffers) == {1, 2}
    assert all(len(b) > 0 for b in snap.buffers.values())


def test_first_snapshot_wins():
    m = _module()
    driver = PTDriver()
    machine = Machine(m, trace_driver=driver)
    machine.run("main", (2,))
    s1 = driver.take_snapshot("first", machine.thread_positions(), 10)
    s2 = driver.take_snapshot("second", machine.thread_positions(), 20)
    assert s1 is s2
    assert driver.snapshot.reason == "first"


def test_breakpoint_snapshot_at_pc():
    m = _module()
    target = next(
        i.uid for i in m.instructions() if i.loc and i.loc.line == 10
    )
    driver = PTDriver()
    machine = Machine(m, trace_driver=driver)
    driver.arm_breakpoint(machine, target)
    machine.run("main", (3,))
    assert driver.snapshot is not None
    assert driver.snapshot.reason == "breakpoint"
    # the triggering thread was stopped exactly at the PC
    assert driver.snapshot.positions[2] == target


def test_breakpoint_skip_count():
    m = _module()
    target = next(i.uid for i in m.instructions() if i.loc and i.loc.line == 10)
    driver = PTDriver()
    machine = Machine(m, trace_driver=driver)
    driver.arm_breakpoint(machine, target, skip=2)
    machine.run("main", (3,))
    # fired on the 3rd (last) execution: later snapshot time than skip=0
    assert driver.snapshot is not None
    d0 = PTDriver()
    m0 = Machine(_module(), trace_driver=d0)
    d0.arm_breakpoint(m0, target, skip=0)
    m0.run("main", (3,))
    assert driver.snapshot.time > d0.snapshot.time


def test_breakpoint_skip_past_all_hits_means_no_snapshot():
    m = _module()
    target = next(i.uid for i in m.instructions() if i.loc and i.loc.line == 10)
    driver = PTDriver()
    machine = Machine(m, trace_driver=driver)
    driver.arm_breakpoint(machine, target, skip=99)
    machine.run("main", (3,))
    assert driver.snapshot is None


def test_disabled_driver_is_free():
    m = _module()
    driver = PTDriver(enabled=False)
    machine = Machine(m, trace_driver=driver)
    machine.run("main", (3,))
    assert driver.total_overhead_ns == 0
    assert driver.take_snapshot("x", {}, 0) is None


def test_tracing_overhead_positive_but_small():
    m = _module()
    base = Machine(m, scheduler=RandomScheduler(1)).run("main", (5,))
    m2 = _module()
    driver = PTDriver()
    traced = Machine(m2, scheduler=RandomScheduler(1), trace_driver=driver).run(
        "main", (5,)
    )
    frac = overhead_fraction(traced.duration, base.duration)
    assert 0.0 < frac < 0.05  # ~1% regime


def test_stats_per_thread():
    m = _module()
    driver = PTDriver()
    machine = Machine(m, trace_driver=driver)
    machine.run("main", (4,))
    stats = driver.stats()
    assert set(stats) == {1, 2}
    worker = stats[2]
    assert worker.tnt_bits >= 5  # loop branches
    assert worker.timing_packets > 0
    assert worker.total_bytes > 0
    assert 0 <= worker.timing_fraction() <= 1


def test_custom_buffer_size_respected():
    cfg = TraceConfig(buffer_size=8 * 1024)
    m = _module()
    driver = PTDriver(cfg)
    machine = Machine(m, trace_driver=driver)
    machine.run("main", (3,))
    for enc in driver.encoders.values():
        assert enc.ring.capacity == 8 * 1024


def test_trace_config_validation():
    import pytest

    with pytest.raises(ValueError):
        TraceConfig(buffer_size=16)
    with pytest.raises(ValueError):
        TraceConfig(mtc_period_ns=0)
    with pytest.raises(ValueError):
        TraceConfig(psb_interval_bytes=3)
