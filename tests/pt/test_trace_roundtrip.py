"""The trace substrate's central guarantee: decoding a snapshot
reconstructs exactly the instructions the machine executed, with sound
time bounds.

The machine's event log (ground truth the server never sees) is compared
against the decoder's output for a variety of programs.
"""

from repro.ir import parse_module
from repro.pt import KB, PTDriver, TraceConfig, decode_thread_trace
from repro.sim import Machine, RandomScheduler

BRANCHY = """
module t
global g: i64 = 0

func helper(x: i64) -> i64 {
entry:
  %c = cmp gt %x, 2
  cbr %c, big, small
big:
  %r = mul %x, 3
  ret %r
small:
  %r2 = add %x, 1
  ret %r2
}

func worker(n: i64) -> void {
entry:
  %i = alloca i64
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = cmp lt %iv, %n
  cbr %c, body, done
body:
  %h = call @helper(%iv)
  store %h, @g
  delay 20000
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  ret
}

func main(n: i64) -> void {
entry:
  %t = spawn @worker(%n)
  delay 30000
  %v = load @g
  join %t
  ret
}
"""


def _traced_run(src, args, seed=0, config=None):
    m = parse_module(src)
    driver = PTDriver(config or TraceConfig())
    machine = Machine(m, scheduler=RandomScheduler(seed), trace_driver=driver)
    result = machine.run("main", args)
    snap = driver.take_snapshot("test", machine.thread_positions(), machine.clock.now)
    return m, machine, result, snap


def test_decode_recovers_executed_set():
    m, machine, result, snap = _traced_run(BRANCHY, (6,))
    assert result.outcome == "success"
    # ground truth: re-run with every instruction watched
    all_uids = {i.uid for i in m.instructions()}
    machine2 = Machine(m, scheduler=RandomScheduler(0), watch_uids=all_uids)
    truth_run = machine2.run("main", (6,))
    truth_by_tid = {}
    for ev in truth_run.event_log:
        truth_by_tid.setdefault(ev.tid, set()).add(ev.uid)
    for tid, data in snap.buffers.items():
        trace = decode_thread_trace(m, data, tid)
        assert not trace.desync
        watched_truth = truth_by_tid.get(tid, set())
        # every memory access the thread performed appears in the decode
        assert watched_truth <= trace.executed_uids


def test_decode_dynamic_counts_match():
    m, machine, result, snap = _traced_run(BRANCHY, (5,))
    # the worker's loop body executes n times: its store-to-g uid appears
    # n times in the decoded trace
    store_uid = next(
        i.uid
        for i in m.function("worker").instructions()
        if i.opcode == "store" and i.operands[1].name == "g"
    )
    worker_tid = 2
    trace = decode_thread_trace(m, snap.buffers[worker_tid], worker_tid)
    count = sum(1 for d in trace.instructions if d.uid == store_uid)
    assert count == 5


def test_decode_time_bounds_are_sound():
    m, machine, result, snap = _traced_run(BRANCHY, (4,))
    all_uids = {i.uid for i in m.instructions()}
    machine2 = Machine(m, scheduler=RandomScheduler(0), watch_uids=all_uids)
    truth_run = machine2.run("main", (4,))
    # match k-th dynamic occurrence of each uid per thread
    from collections import defaultdict

    truth_times = defaultdict(list)
    for ev in truth_run.event_log:
        truth_times[(ev.tid, ev.uid)].append(ev.time)
    for tid, data in snap.buffers.items():
        trace = decode_thread_trace(m, data, tid)
        seen = defaultdict(int)
        for d in trace.instructions:
            k = seen[d.uid]
            seen[d.uid] += 1
            times = truth_times.get((tid, d.uid))
            if times is None or k >= len(times):
                continue
            t = times[k]
            # tracing adds overhead so traced times drift forward a bit
            # relative to the untraced ground-truth run; bounds must hold
            # within that drift budget
            drift = int(result.duration * 0.05) + 1000
            assert d.t_lo - drift <= t <= d.t_hi + drift, (
                f"uid {d.uid} occ {k}: {t} not in [{d.t_lo},{d.t_hi}] +- {drift}"
            )


def test_ring_wraparound_still_decodes():
    cfg = TraceConfig(buffer_size=4 * KB)
    m, machine, result, snap = _traced_run(BRANCHY, (220,), config=cfg)
    worker_tid = 2
    data = snap.buffers[worker_tid]
    trace = decode_thread_trace(m, data, worker_tid)
    assert trace.truncated  # the ring wrapped: oldest history lost
    assert not trace.desync
    assert trace.instructions  # but the recent window decoded fine
    # the decoded window ends where the thread actually was
    assert trace.stop_uid == snap.positions[worker_tid]


def test_compressed_returns_used():
    m, machine, result, snap = _traced_run(BRANCHY, (6,))
    stats = machine.driver.stats() if hasattr(machine, "driver") else None
    # read stats from the driver used in the run
    # (helper calls return via TNT compression, not TIPs)
    # driver is reachable via the machine's trace driver
    drv = machine.driver
    worker_stats = drv.stats()[2]
    assert worker_stats.compressed_rets > 0


def test_decoder_stops_exactly_at_positions():
    m, machine, result, snap = _traced_run(BRANCHY, (3,))
    for tid, data in snap.buffers.items():
        trace = decode_thread_trace(m, data, tid)
        assert trace.stop_uid == snap.positions[tid]
