"""Decoder regression tests for mid-stream PSB handling.

A cadence PSB lands between packets of an in-sync walk; the decoder must
decode *through* it without rewinding to the (already passed) anchor —
the bug that once duplicated block prefixes — and must keep return
decoding consistent with the encoder's compression reset.
"""

from repro.ir import parse_module
from repro.pt import PTDriver, TraceConfig, decode_thread_trace
from repro.sim import Machine, RandomScheduler

LOOPY = """
module t
global g: i64 = 0

func leaf(x: i64) -> i64 {
entry:
  %c = cmp gt %x, 1
  cbr %c, a, b
a:
  %r = add %x, 10
  ret %r
b:
  %r2 = add %x, 20
  ret %r2
}

func main(n: i64) -> void {
entry:
  %i = alloca i64
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = cmp lt %iv, %n
  cbr %c, body, done
body:
  %v = call @leaf(%iv)
  store %v, @g
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  ret
}
"""


def _decode_with_psb_interval(interval: int, n: int = 600):
    m = parse_module(LOOPY)
    cfg = TraceConfig(psb_interval_bytes=interval)
    driver = PTDriver(cfg)
    machine = Machine(m, scheduler=RandomScheduler(0), trace_driver=driver)
    result = machine.run("main", (n,))
    assert result.outcome == "success"
    snap = driver.take_snapshot("x", machine.thread_positions(), machine.clock.now)
    trace = decode_thread_trace(m, snap.buffers[1], 1)
    return m, driver, trace


def test_frequent_psbs_do_not_duplicate_records():
    m, driver, trace = _decode_with_psb_interval(64)  # PSB every ~64 bytes
    assert driver.encoders[1].stats.sync_packets > 3
    store_uid = next(
        i.uid
        for i in m.function("main").instructions()
        if i.opcode == "store" and getattr(i.operands[1], "name", "") == "g"
    )
    count = sum(1 for d in trace.instructions if d.uid == store_uid)
    assert count == 600  # exactly once per loop iteration, no rewinds


def test_decode_identical_across_psb_cadences():
    _, _, sparse = _decode_with_psb_interval(1 << 20)
    _, _, dense = _decode_with_psb_interval(64)
    assert [d.uid for d in sparse.instructions] == [d.uid for d in dense.instructions]


def test_returns_survive_compression_resets():
    # With a leaf call per iteration and PSBs mid-loop, some returns are
    # compressed and some (post-PSB) are uncompressed TIPs; both decode.
    m, driver, trace = _decode_with_psb_interval(96)
    ret_uids = {i.uid for i in m.function("leaf").instructions() if i.opcode == "ret"}
    decoded_rets = sum(1 for d in trace.instructions if d.uid in ret_uids)
    assert decoded_rets == 600
    stats = driver.encoders[1].stats
    # PSB resets make some returns uncompressed (TIPs); all still decode
    assert stats.compressed_rets + stats.tips >= 600
