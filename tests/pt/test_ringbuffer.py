"""Ring buffer: wraparound keeps exactly the newest bytes."""

import pytest
from hypothesis import given, strategies as st

from repro.pt.ringbuffer import RingBuffer


def test_simple_write_and_snapshot():
    rb = RingBuffer(16)
    rb.write(b"hello")
    assert rb.snapshot() == b"hello"
    assert not rb.wrapped


def test_wraparound_keeps_newest():
    rb = RingBuffer(8)
    rb.write(b"abcdefgh")
    rb.write(b"XY")
    assert rb.wrapped
    assert rb.snapshot() == b"cdefghXY"


def test_oversized_write():
    rb = RingBuffer(4)
    rb.write(b"0123456789")
    assert rb.snapshot() == b"6789"


def test_clear():
    rb = RingBuffer(8)
    rb.write(b"abc")
    rb.clear()
    assert rb.snapshot() == b""
    assert rb.total_written == 0


def test_capacity_positive():
    with pytest.raises(ValueError):
        RingBuffer(0)


@given(
    cap=st.integers(min_value=1, max_value=64),
    chunks=st.lists(st.binary(min_size=0, max_size=40), max_size=30),
)
def test_snapshot_matches_suffix_of_history(cap, chunks):
    rb = RingBuffer(cap)
    history = b""
    for chunk in chunks:
        rb.write(chunk)
        history += chunk
    expected = history[-cap:] if len(history) > cap else history
    assert rb.snapshot() == expected
    assert rb.total_written == len(history)
