"""The benchmark summary distiller and its CI regression gate."""

import importlib.util
import json
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    Path(__file__).resolve().parents[2] / "benchmarks" / "compare_bench.py",
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)

FLEET_TABLE = """\
fleet throughput: 50 agents, 3 bugs x 3 reporters; cold vs warm caches
======================================================================
metric                       | cold    | warm
-----------------------------+---------+--------
median diagnosis latency     | 344 ms  | 3 ms
  median analysis            | 2.43 ms | 2.75 ms
cache hits (analysis)        | 3       | 3
cache hits (trace)           | 30      | 30
cache hit rate               | 100%    | 100%
"""


def test_parse_fleet_extracts_latency_and_cache_health():
    parsed = compare_bench.parse_fleet(FLEET_TABLE)
    assert parsed["fleet_median_latency_ms"] == {"cold": 344.0, "warm": 3.0}
    assert parsed["fleet_cache_hit_rate"] == 1.0
    assert parsed["fleet_warm_cache_hits"] == {"analysis": 3, "trace": 30}


def test_gate_fails_on_real_warm_regression():
    base = {"fleet_median_latency_ms": {"cold": 400.0, "warm": 100.0}}
    new = {"fleet_median_latency_ms": {"cold": 400.0, "warm": 200.0}}
    problems = compare_bench.check_regression(new, base)
    assert problems and "warm fleet latency regressed" in problems[0]


def test_gate_ignores_small_absolute_deltas():
    # 3 -> 10 ms is +233% but only +7 ms: scheduler noise, not a regression
    base = {"fleet_median_latency_ms": {"warm": 3.0}}
    new = {"fleet_median_latency_ms": {"warm": 10.0}}
    assert compare_bench.check_regression(new, base) == []


def test_gate_allows_within_tolerance_and_missing_metrics():
    base = {"fleet_median_latency_ms": {"warm": 100.0}}
    assert (
        compare_bench.check_regression(
            {"fleet_median_latency_ms": {"warm": 115.0}}, base
        )
        == []
    )
    assert compare_bench.check_regression({}, base) == []
    assert (
        compare_bench.check_regression(
            {"fleet_median_latency_ms": {"warm": 5.0}}, {}
        )
        == []
    )


def test_cli_check_mode_round_trip(tmp_path, monkeypatch, capsys):
    out = tmp_path / "out"
    out.mkdir()
    (out / "fleet.txt").write_text(FLEET_TABLE)
    monkeypatch.setattr(compare_bench, "OUT_DIR", out)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps({"fleet_median_latency_ms": {"cold": 350.0, "warm": 5.0}})
    )
    assert compare_bench.cli(["--check-against", str(baseline)]) == 0
    # the summary side effect still lands next to the parsed tables
    summary = json.loads((out / "BENCH_diagnosis.json").read_text())
    assert summary["fleet_median_latency_ms"]["warm"] == 3.0
    # a genuinely slower run against a fast committed baseline fails
    baseline.write_text(
        json.dumps({"fleet_median_latency_ms": {"cold": 350.0, "warm": 100.0}})
    )
    (out / "fleet.txt").write_text(FLEET_TABLE.replace("| 3 ms", "| 300 ms"))
    assert compare_bench.cli(["--check-against", str(baseline)]) == 1
