"""Bench harness: CIH measurement, gap extraction, table rendering."""

import pytest

from repro.bench import (
    measure_cih,
    measure_tracing_overhead,
    render_series,
    render_table,
    run_accuracy,
)
from repro.bench.scalability import build_server_app
from repro.corpus import bug
from repro.sim import Machine


def test_measure_cih_shapes():
    spec = bug("pbzip2-n/a")
    m = measure_cih(spec, runs=3, max_attempts=300)
    assert len(m.gaps_ns) == 3
    assert m.n_gaps == 1
    assert m.min_us() > 0
    assert m.mean_us(0) > 0
    assert m.runs_needed >= 3


def test_measure_cih_atomicity_two_gaps():
    spec = bug("aget-n/a")
    m = measure_cih(spec, runs=2, max_attempts=300)
    assert m.n_gaps == 2
    assert m.std_us(0) >= 0


def test_measure_cih_deadlock_uses_block_times():
    spec = bug("sqlite-1672")
    m = measure_cih(spec, runs=2, max_attempts=300)
    assert m.n_gaps == 1
    assert m.min_us() > 0


def test_run_accuracy_outcome_fields():
    spec = bug("pbzip2-n/a")
    o = run_accuracy(spec)
    assert o.diagnosed and o.exact
    assert o.f1 == 1.0
    assert o.ordering_accuracy == 100.0
    assert o.bug_kind == "order-violation"


def test_overhead_measurement_positive():
    spec = bug("pbzip2-n/a")
    m = measure_tracing_overhead(spec, seeds=2)
    assert len(m.fractions) == 2
    assert 0 < m.mean_percent < 5
    assert m.peak_percent >= m.mean_percent


def test_render_table_alignment():
    text = render_table("T", ["col", "value"], [["a", 1.5], ["bbb", 2]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "col" in lines[2] and "|" in lines[2]
    data_lines = [lines[2]] + lines[4:]  # header + rows (skip separator)
    assert len({line.index("|") for line in data_lines}) == 1  # aligned


def test_render_series():
    text = render_series("S", [(2, 1.0), (4, 2.0)])
    assert "2: 1.00" in text


def test_server_app_builds_for_any_thread_count():
    for n in (1, 2, 16):
        m = build_server_app(n)
        result = Machine(m).run("main", (2, 10_000))
        assert result.outcome == "success"
        assert len(result.thread_stats) == n + 1
