"""Textual IR: print/parse round trips and error reporting."""

import pytest

from repro.errors import IRParseError
from repro.ir import Module, IRBuilder, parse_module, print_module
from repro.ir.types import I64, LOCK, VOID, ptr

SRC = """
module demo

struct Queue { head: i64, tail: i64, mut: lock }

global g_fifo: ptr<Queue> = null
global g_count: i64 = 3

func worker(q: ptr<Queue>, n: i64) -> i64 {
entry:
  %acc = alloca i64
  store 0, %acc
  br loop
loop:
  %a = load %acc
  %c = cmp lt %a, %n
  cbr %c, body, done
body:
  %h = fieldaddr %q, head   @ demo.c:10
  %v = load %h
  %a2 = add %a, 1
  store %a2, %acc
  br loop
done:
  ret %a
}

func main() -> void {
entry:
  %q = malloc Queue
  %m = fieldaddr %q, mut
  lockinit %m
  lock %m
  store %q, @g_fifo
  unlock %m
  %t = spawn @worker(%q, 5)
  join %t
  %r = call @worker(%q, 2)
  delay 1000
  free %q
  ret
}
"""


def test_parse_then_print_round_trips():
    m = parse_module(SRC)
    text1 = print_module(m)
    m2 = parse_module(text1)
    assert print_module(m2) == text1


def test_parse_builds_expected_structure():
    m = parse_module(SRC)
    assert set(m.functions) == {"worker", "main"}
    assert set(m.globals) == {"g_fifo", "g_count"}
    q = m.struct("Queue")
    assert [f.name for f in q.fields] == ["head", "tail", "mut"]
    worker = m.function("worker")
    assert [b.name for b in worker.blocks] == ["entry", "loop", "body", "done"]


def test_parse_preserves_locations():
    m = parse_module(SRC)
    located = [i for i in m.instructions() if i.loc is not None]
    assert any(i.loc.file == "demo.c" and i.loc.line == 10 for i in located)


def test_parse_global_initializers():
    m = parse_module(SRC)
    from repro.ir.values import Constant, NullPointer

    assert isinstance(m.global_var("g_fifo").initializer, NullPointer)
    init = m.global_var("g_count").initializer
    assert isinstance(init, Constant) and init.value == 3


def test_builder_module_round_trips():
    m = Module("built")
    st = m.add_struct("S", [("a", I64), ("l", LOCK)])
    m.add_global("g", ptr(st))
    b = IRBuilder(m)
    b.begin_function("f", VOID, [("p", ptr(st))])
    x = b.load_field(b.param("p"), "a")
    cond = b.cmp("ge", x, 0)
    with b.if_then(cond):
        b.store_field(1, b.param("p"), "a")
    b.ret()
    m.finalize()
    text = print_module(m)
    assert print_module(parse_module(text)) == text


@pytest.mark.parametrize(
    "bad, message_part",
    [
        ("", "empty input"),
        ("func f() -> void {\nentry:\n ret\n}", "module"),
        ("module m\nfunc f() -> void {\nentry:\n  %x = load %nope\n  ret\n}", "unknown value"),
        ("module m\nfunc f() -> void {\nentry:\n  br nowhere\n}", "unknown label"),
        ("module m\nglobal g: wat", "unknown type"),
        ("module m\nfunc f() -> void {\nentry:\n  zorp %x\n  ret\n}", "unknown instruction"),
    ],
)
def test_parse_errors(bad, message_part):
    with pytest.raises(IRParseError) as err:
        parse_module(bad)
    assert message_part in str(err.value)


def test_comments_stripped():
    src = """
module m
# a comment line
func f() -> void {   ; trailing comment
entry:
  ret            # another
}
"""
    m = parse_module(src)
    assert "f" in m.functions
