"""Verifier rules and CFG analyses (dominators, postdominators,
control dependence, predecessor chains)."""

import pytest

from repro.errors import VerifierError
from repro.ir import IRBuilder, Module
from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import (
    control_dependent_blocks,
    dominators,
    postdominators,
    predecessor_chain,
    predecessors_map,
    reachable_blocks,
)
from repro.ir.instructions import Br, Load, Ret, Store
from repro.ir.types import I64, VOID
from repro.ir.values import Constant


def _diamond():
    """entry -> (then|else) -> exit, with a loop-free diamond."""
    m = Module("t")
    b = IRBuilder(m)
    b.begin_function("f", I64, [("n", I64)])
    out = b.alloca(I64, "out")
    cond = b.cmp("gt", b.param("n"), 0)
    then_b = b.add_block("then")
    else_b = b.add_block("else")
    exit_b = b.add_block("exit")
    b.cbr(cond, then_b, else_b)
    b.position(then_b)
    b.store(1, out)
    b.br(exit_b)
    b.position(else_b)
    b.store(2, out)
    b.br(exit_b)
    b.position(exit_b)
    b.ret(b.load(out))
    return m, m.function("f")


def test_dominators_diamond():
    m, fn = _diamond()
    m.finalize()
    dom = dominators(fn)
    entry, then_b, else_b, exit_b = fn.blocks
    assert dom[exit_b] == {entry, exit_b}
    assert dom[then_b] == {entry, then_b}


def test_postdominators_diamond():
    m, fn = _diamond()
    m.finalize()
    pdom = postdominators(fn)
    entry, then_b, else_b, exit_b = fn.blocks
    assert exit_b in pdom[entry]
    assert then_b not in pdom[entry]


def test_control_dependence_diamond():
    m, fn = _diamond()
    m.finalize()
    cdep = control_dependent_blocks(fn)
    entry, then_b, else_b, exit_b = fn.blocks
    assert entry in cdep[then_b]
    assert entry in cdep[else_b]
    assert entry not in cdep[exit_b]  # exit always runs


def test_control_dependence_inside_loop():
    """An if-guarded block inside a loop depends on the guard, not just
    the loop header (the regression that broke Gist's deadlock slices)."""
    m = Module("t")
    b = IRBuilder(m)
    b.begin_function("f", VOID, [("n", I64)])
    i = b.alloca(I64, "i")
    guarded_block = None
    with b.for_range(i, 0, b.param("n")) as iv:
        pos = b.cmp("gt", iv, 2)
        with b.if_then(pos):
            guarded_block = b.block
            b.store(0, i)
    b.ret()
    m.finalize()
    fn = m.function("f")
    cdep = control_dependent_blocks(fn)
    governors = cdep[guarded_block]
    # the guard's block terminates in the cbr on `pos`
    assert any(
        blk.instructions[-1].opcode == "cbr"
        and guarded_block in [blk.instructions[-1].then_block]
        for blk in governors
    )


def test_predecessors_and_reachability():
    m, fn = _diamond()
    m.finalize()
    entry, then_b, else_b, exit_b = fn.blocks
    preds = predecessors_map(fn)
    assert set(preds[exit_b]) == {then_b, else_b}
    assert preds[entry] == []
    assert reachable_blocks(fn) == set(fn.blocks)


def test_predecessor_chain_orders_nearest_first():
    m, fn = _diamond()
    m.finalize()
    entry, then_b, else_b, exit_b = fn.blocks
    chain = predecessor_chain(exit_b)
    assert set(chain[:2]) == {then_b, else_b}
    assert chain[2] == entry


def test_verifier_rejects_missing_terminator():
    m = Module("t")
    fn = m.add_function("f", VOID, [])
    block = fn.add_block("entry")
    block.append(Store(Constant(I64, 1), _alloca_in(block)))
    with pytest.raises(VerifierError):
        m.finalize()


def _alloca_in(block: BasicBlock):
    from repro.ir.instructions import Alloca

    a = Alloca(I64, "x")
    block.append(a)
    return a


def test_verifier_rejects_use_before_def():
    m = Module("t")
    fn = m.add_function("f", VOID, [])
    block = fn.add_block("entry")
    from repro.ir.instructions import Alloca

    a = Alloca(I64, "x")
    load = Load(a, "v")  # 'a' not yet appended
    block.append(load)
    a.parent = block  # simulate corruption
    block.append(Ret())
    with pytest.raises(VerifierError):
        m.finalize()


def test_verifier_rejects_non_dominating_use():
    m = Module("t")
    b = IRBuilder(m)
    b.begin_function("f", VOID, [("c", I64)])
    then_b = b.add_block("then")
    else_b = b.add_block("else")
    join_b = b.add_block("join")
    cond = b.cmp("gt", b.param("c"), 0)
    b.cbr(cond, then_b, else_b)
    b.position(then_b)
    v = b.alloca(I64, "v")  # defined only on the then path... actually
    # allocas are hoisted; use a load instead to get a plain value
    loaded = b.load(v)
    b.br(join_b)
    b.position(else_b)
    b.br(join_b)
    b.position(join_b)
    # uses `loaded` from then-block: does not dominate join
    b.store(loaded, v)
    b.ret()
    with pytest.raises(VerifierError):
        m.finalize()


def test_verifier_rejects_cross_function_branch():
    m = Module("t")
    f1 = m.add_function("f1", VOID, [])
    f2 = m.add_function("f2", VOID, [])
    b1 = f1.add_block("entry")
    b2 = f2.add_block("entry")
    b2.append(Ret())
    b1.append(Br(b2))
    with pytest.raises(VerifierError):
        m.finalize()


def test_verifier_accepts_valid_diamond():
    m, _ = _diamond()
    m.finalize()  # should not raise
