"""Instruction construction and type checking."""

import pytest

from repro.errors import IRTypeError
from repro.ir import (
    Assert,
    BinOp,
    Cmp,
    Constant,
    Delay,
    FieldAddr,
    Free,
    IndexAddr,
    Load,
    Lock,
    Module,
    NullPointer,
    Store,
    Unlock,
)
from repro.ir.instructions import Alloca, Malloc, SourceLoc
from repro.ir.types import I1, I64, LOCK, ArrayType, StructType, ptr


def _ptr_value(pointee):
    return Alloca(pointee, "p")


def test_load_result_type_is_pointee():
    p = _ptr_value(I64)
    load = Load(p, "v")
    assert load.ty == I64
    assert load.is_memory_read and not load.is_memory_write
    assert load.pointer_operand() is p


def test_load_of_aggregate_rejected():
    st = StructType("S", [("x", I64)])
    p = _ptr_value(st)
    with pytest.raises(IRTypeError):
        Load(p)


def test_store_type_checked():
    p = _ptr_value(I64)
    Store(Constant(I64, 1), p)  # fine
    with pytest.raises(IRTypeError):
        Store(Constant(I1, 1), p)


def test_store_classification():
    p = _ptr_value(I64)
    s = Store(Constant(I64, 1), p)
    assert s.is_memory_write
    assert s.pointer_operand() is p


def test_fieldaddr_offset_and_type():
    st = StructType("S", [("a", I64), ("b", I64)])
    p = _ptr_value(st)
    fa = FieldAddr(p, "b")
    assert fa.offset == 8
    assert fa.ty == ptr(I64)
    with pytest.raises(IRTypeError):
        FieldAddr(p, "zz")


def test_fieldaddr_requires_struct_pointer():
    p = _ptr_value(I64)
    with pytest.raises(IRTypeError):
        FieldAddr(p, "a")


def test_indexaddr_on_array_and_scalar():
    arr_p = _ptr_value(ArrayType(I64, 4))
    ia = IndexAddr(arr_p, Constant(I64, 2))
    assert ia.ty == ptr(I64)
    scalar_p = _ptr_value(I64)
    ia2 = IndexAddr(scalar_p, Constant(I64, 1))
    assert ia2.ty == ptr(I64)
    with pytest.raises(IRTypeError):
        IndexAddr(arr_p, NullPointer(ptr(I64)))


def test_binop_requires_matching_types():
    with pytest.raises(IRTypeError):
        BinOp("add", Constant(I64, 1), Constant(I1, 1))
    with pytest.raises(IRTypeError):
        BinOp("nonsense", Constant(I64, 1), Constant(I64, 2))


def test_cmp_produces_i1():
    c = Cmp("lt", Constant(I64, 1), Constant(I64, 2))
    assert c.ty == I1


def test_lock_ops_require_lock_pointer():
    lp = _ptr_value(LOCK)
    Lock(lp)
    Unlock(lp)
    with pytest.raises(IRTypeError):
        Lock(_ptr_value(I64))


def test_free_pointer_operand():
    p = _ptr_value(I64)
    f = Free(p)
    assert f.pointer_operand() is p


def test_delay_requires_integer():
    Delay(Constant(I64, 100))
    with pytest.raises(IRTypeError):
        Delay(NullPointer(ptr(I64)))


def test_assert_requires_i1():
    Assert(Cmp("eq", Constant(I64, 1), Constant(I64, 1)), "msg")
    with pytest.raises(IRTypeError):
        Assert(Constant(I64, 1))


def test_malloc_with_count():
    m = Malloc(I64, Constant(I64, 8), "buf")
    assert m.count is not None
    assert m.is_allocation
    assert Malloc(I64).count is None


def test_source_loc():
    loc = SourceLoc("a.c", 12)
    assert str(loc) == "a.c:12"
    assert loc == SourceLoc("a.c", 12)
    assert loc != SourceLoc("a.c", 13)
    assert hash(loc) == hash(SourceLoc("a.c", 12))


def test_call_arity_and_types_checked():
    from repro.ir.instructions import Call
    from repro.ir.values import FunctionRef

    m = Module("t")
    fn = m.add_function("f", I64, [("x", I64)])
    ref = FunctionRef(fn)
    call = Call(ref, [Constant(I64, 3)])
    assert call.ty == I64
    assert call.is_direct
    with pytest.raises(IRTypeError):
        Call(ref, [])
    with pytest.raises(IRTypeError):
        Call(ref, [Constant(I1, 0)])
