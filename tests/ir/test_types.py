"""IR type system: equality, sizing, layout."""

import pytest

from repro.errors import IRTypeError
from repro.ir.types import (
    F64,
    I1,
    I8,
    I32,
    I64,
    LOCK,
    THREAD,
    VOID,
    WORD_SIZE,
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    ptr,
)


def test_int_types_equal_by_width():
    assert IntType(64) == I64
    assert IntType(32) != I64
    assert hash(IntType(8)) == hash(I8)


def test_int_width_bounds():
    with pytest.raises(IRTypeError):
        IntType(0)
    with pytest.raises(IRTypeError):
        IntType(128)


def test_scalars_are_word_sized():
    for ty in (I1, I8, I32, I64, F64, LOCK, THREAD, ptr(I64)):
        assert ty.size() == WORD_SIZE


def test_void_has_no_size():
    with pytest.raises(IRTypeError):
        VOID.size()


def test_pointer_equality_is_structural():
    assert ptr(I64) == ptr(I64)
    assert ptr(I64) != ptr(I32)
    assert ptr(ptr(I8)) == PointerType(PointerType(I8))


def test_pointer_to_void_rejected():
    with pytest.raises(IRTypeError):
        PointerType(VOID)


def test_struct_layout_offsets():
    st = StructType("Pair", [("a", I64), ("b", I64), ("c", ptr(I8))])
    assert st.size() == 3 * WORD_SIZE
    assert st.field("a").offset == 0
    assert st.field("b").offset == WORD_SIZE
    assert st.field("c").offset == 2 * WORD_SIZE
    assert st.field_index("c") == 2


def test_struct_nominal_equality():
    a = StructType("S", [("x", I64)])
    b = StructType("S", [("x", I64), ("y", I64)])
    assert a == b  # equality by name (nominal typing)
    assert hash(a) == hash(b)


def test_struct_unknown_field():
    st = StructType("S", [("x", I64)])
    with pytest.raises(IRTypeError):
        st.field("nope")


def test_struct_duplicate_field_rejected():
    with pytest.raises(IRTypeError):
        StructType("S", [("x", I64), ("x", I64)])


def test_opaque_struct_has_no_size():
    st = StructType("Opaque")
    assert st.is_opaque
    with pytest.raises(IRTypeError):
        st.size()
    st.set_body([("x", I64)])
    assert st.size() == WORD_SIZE


def test_recursive_struct_via_opaque():
    node = StructType("Node")
    node.set_body([("value", I64), ("next", PointerType(node))])
    assert node.size() == 2 * WORD_SIZE
    assert node.field("next").ty.pointee is node


def test_array_type():
    arr = ArrayType(I64, 10)
    assert arr.size() == 10 * WORD_SIZE
    assert ArrayType(I64, 10) == arr
    assert ArrayType(I64, 9) != arr
    with pytest.raises(IRTypeError):
        ArrayType(I64, -1)


def test_nested_aggregate_size():
    inner = StructType("Inner", [("a", I64), ("b", I64)])
    outer = StructType("Outer", [("x", inner), ("arr", ArrayType(I64, 3))])
    assert outer.size() == 2 * WORD_SIZE + 3 * WORD_SIZE
    assert outer.field("arr").offset == 2 * WORD_SIZE


def test_function_type():
    ft = FunctionType(I64, [I64, ptr(I8)])
    assert ft == FunctionType(I64, [I64, ptr(I8)])
    assert ft != FunctionType(VOID, [I64, ptr(I8)])
    assert "fn(" in str(ft)


def test_str_renderings():
    assert str(I64) == "i64"
    assert str(ptr(I32)) == "ptr<i32>"
    assert str(ArrayType(I8, 4)) == "[4 x i8]"
    assert str(LOCK) == "lock"
