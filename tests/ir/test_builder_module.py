"""Builder API, module finalization, uid assignment."""

import pytest

from repro.errors import IRError
from repro.ir import IRBuilder, Module
from repro.ir.types import I64, VOID, ptr


def _simple_module():
    m = Module("t")
    b = IRBuilder(m)
    b.begin_function("main", VOID, [])
    slot = b.alloca(I64, "x")
    b.store(41, slot)
    v = b.load(slot)
    b.store(b.add(v, 1), slot)
    b.ret()
    return m, b


def test_finalize_assigns_unique_uids():
    m, _ = _simple_module()
    m.finalize()
    uids = [i.uid for i in m.instructions()]
    assert len(uids) == len(set(uids))
    assert all(u > 0 for u in uids)
    # block_index set and consistent
    for i in m.instructions():
        assert i.parent.instructions[i.block_index] is i


def test_finalize_idempotent():
    m, _ = _simple_module()
    m.finalize()
    first = [i.uid for i in m.instructions()]
    m.finalize()
    assert [i.uid for i in m.instructions()] == first


def test_instruction_lookup_by_uid():
    m, _ = _simple_module()
    m.finalize()
    for i in m.instructions():
        assert m.instruction(i.uid) is i
    with pytest.raises(IRError):
        m.instruction(10**9)


def test_unfinalized_lookup_rejected():
    m, _ = _simple_module()
    with pytest.raises(IRError):
        m.instruction(1)


def test_duplicate_names_rejected():
    m = Module("t")
    m.add_struct("S", [("x", I64)])
    with pytest.raises(IRError):
        m.add_struct("S", [("y", I64)])
    m.add_global("g", I64)
    with pytest.raises(IRError):
        m.add_global("g", I64)
    m.add_function("f", VOID, [])
    with pytest.raises(IRError):
        m.add_function("f", VOID, [])


def test_builder_if_else():
    m = Module("t")
    b = IRBuilder(m)
    b.begin_function("f", I64, [("n", I64)])
    out = b.alloca(I64, "out")
    big = b.cmp("gt", b.param("n"), 10)
    with b.if_else(big) as otherwise:
        b.store(1, out)
        with otherwise:
            b.store(2, out)
    b.ret(b.load(out))
    m.finalize()
    fn = m.function("f")
    # entry + then + else + endif = 4 blocks
    assert len(fn.blocks) == 4


def test_builder_if_else_requires_else_arm():
    m = Module("t")
    b = IRBuilder(m)
    b.begin_function("f", VOID, [])
    cond = b.cmp("eq", b.i64(1), 1)
    with pytest.raises(IRError):
        with b.if_else(cond):
            pass  # never enters the else arm
    del m


def test_builder_while_loop():
    m = Module("t")
    b = IRBuilder(m)
    b.begin_function("f", I64, [("n", I64)])
    i = b.alloca(I64, "i")
    b.store(0, i)

    def cond():
        return b.cmp("lt", b.load(i), b.param("n"))

    with b.while_(cond):
        b.store(b.add(b.load(i), 1), i)
    b.ret(b.load(i))
    m.finalize()
    assert m.function("f").blocks  # builds and verifies


def test_builder_for_range_yields_induction_value():
    m = Module("t")
    b = IRBuilder(m)
    b.begin_function("f", I64, [])
    acc = b.alloca(I64, "acc")
    b.store(0, acc)
    i = b.alloca(I64, "i")
    with b.for_range(i, 0, 5) as iv:
        b.store(b.add(b.load(acc), iv), acc)
    b.ret(b.load(acc))
    m.finalize()
    from repro.sim import Machine

    result = Machine(m).run("f")
    assert result.exit_value == 0 + 1 + 2 + 3 + 4


def test_builder_location_scoping():
    m = Module("t")
    b = IRBuilder(m)
    b.begin_function("f", VOID, [])
    with b.at_location("x.c", 7):
        s = b.alloca(I64)
    outside = b.alloca(I64)
    b.ret()
    assert s.loc is not None and s.loc.line == 7
    assert outside.loc is None


def test_store_literal_coercion():
    m = Module("t")
    b = IRBuilder(m)
    b.begin_function("f", VOID, [])
    slot = b.alloca(I64)
    b.store(5, slot)  # literal coerced to i64
    b.ret()
    m.finalize()


def test_instruction_count():
    m, _ = _simple_module()
    m.finalize()
    assert m.instruction_count() == 6  # alloca, store, load, add, store, ret
