"""The fleet server's evidence memoization key.

Regression for the cache-key audit: two servers that differ only in the
collection scheduler config must never share collected evidence — a
different preemption granularity interleaves the very same seeds
differently.
"""

from repro.fleet.server import FleetServer
from repro.fleet.wire import FailureEnvelope
from repro.ir import parse_module
from repro.runtime.protocol import FailureNotification

from tests.runtime.test_client_server import SRC

ENV = FailureEnvelope(
    bug_id="custom-readbeforeinit",
    seed=7,
    notification=FailureNotification(
        bug_hint="custom-readbeforeinit", failing_uid=89, failing_tid=2, time=0
    ),
    sample=None,
)


def _server(**kw):
    return FleetServer(module_resolver=lambda bug_id: None, workers=1, **kw)


def test_evidence_key_includes_collection_mean_quantum():
    module = parse_module(SRC)
    a = _server(collection_mean_quantum=24)
    b = _server(collection_mean_quantum=8)
    c = _server(collection_mean_quantum=24)
    try:
        assert a._evidence_key(module, ENV) != b._evidence_key(module, ENV)
        assert a._evidence_key(module, ENV) == c._evidence_key(module, ENV)
    finally:
        for s in (a, b, c):
            s.jobs.shutdown(wait=True)


def test_evidence_key_still_varies_by_stopping_policy():
    module = parse_module(SRC)
    fixed = _server(stopping="fixed")
    adaptive = _server(stopping="stable-top")
    try:
        assert fixed._evidence_key(module, ENV) != adaptive._evidence_key(
            module, ENV
        )
    finally:
        for s in (fixed, adaptive):
            s.jobs.shutdown(wait=True)
