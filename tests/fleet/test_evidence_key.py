"""The fleet server's evidence memoization key.

Regression for the cache-key audit: two servers that differ only in the
collection scheduler config must never share collected evidence — a
different preemption granularity interleaves the very same seeds
differently.
"""

from repro.api import SchedulerPolicy
from repro.fleet.server import FleetServer
from repro.fleet.wire import FailureEnvelope
from repro.ir import parse_module
from repro.runtime.protocol import FailureNotification

from tests.runtime.test_client_server import SRC

ENV = FailureEnvelope(
    bug_id="custom-readbeforeinit",
    seed=7,
    notification=FailureNotification(
        bug_hint="custom-readbeforeinit", failing_uid=89, failing_tid=2, time=0
    ),
    sample=None,
)


def _server(**kw):
    return FleetServer(module_resolver=lambda bug_id: None, workers=1, **kw)


def test_evidence_key_includes_collection_policy():
    module = parse_module(SRC)
    a = _server(collection_policy=SchedulerPolicy(mean_quantum=24))
    b = _server(collection_policy=SchedulerPolicy(mean_quantum=8))
    c = _server()  # defaults to SchedulerPolicy() == ("random", 24)
    d = _server(collection_policy=SchedulerPolicy(kind="hierarchical"))
    try:
        assert a._evidence_key(module, ENV) != b._evidence_key(module, ENV)
        assert a._evidence_key(module, ENV) == c._evidence_key(module, ENV)
        assert a._evidence_key(module, ENV) != d._evidence_key(module, ENV)
    finally:
        for s in (a, b, c, d):
            s.jobs.shutdown(wait=True)


def test_default_policy_cache_key_is_wire_compatible():
    # the pre-SchedulerPolicy fleet keyed evidence on the literal tuple
    # ("random", 24); the default policy must reproduce it byte for
    # byte so an in-place upgrade keeps its warm cache
    assert SchedulerPolicy().cache_key() == ("random", 24)
    assert SchedulerPolicy(mean_quantum=48).cache_key() == ("random", 48)


def test_evidence_key_still_varies_by_stopping_policy():
    module = parse_module(SRC)
    fixed = _server(stopping="fixed")
    adaptive = _server(stopping="stable-top")
    try:
        assert fixed._evidence_key(module, ENV) != adaptive._evidence_key(
            module, ENV
        )
    finally:
        for s in (fixed, adaptive):
            s.jobs.shutdown(wait=True)
