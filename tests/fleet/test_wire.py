"""Wire codec: round-trips for every message type, bytes-safety,
checksum/truncation rejection."""

import pytest

from repro.core.pipeline import TraceSample
from repro.errors import WireError
from repro.fleet.wire import (
    HEADER_SIZE,
    DiagnosisResult,
    FailureEnvelope,
    Goodbye,
    Hello,
    Reject,
    TraceBatchRequest,
    TraceBatchResponse,
    WireFault,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
    sample_from_dict,
    sample_to_dict,
)
from repro.runtime.protocol import FailureNotification, TraceRequest, TraceResponse
from repro.sim.failures import (
    CrashReport,
    DeadlockEntry,
    DeadlockReport,
    FailureReport,
)


def roundtrip(msg, request_id=0):
    decoded, rid = decode_frame(encode_frame(msg, request_id))
    assert rid == request_id
    return decoded


def make_sample(**overrides):
    fields = dict(
        label="failure",
        failing=True,
        buffers={0: b"\x02\x82\x01\xff\x00PSB", 1: b"", 7: bytes(range(256))},
        positions={0: 12, 1: 0, 7: 99},
        failure=CrashReport(
            kind="crash",
            failing_uid=12,
            failing_tid=0,
            time=123_456_789,
            detail="null deref",
            fault_kind="null",
            fault_address=0,
            operand_value=None,
        ),
        snapshot_time=123_456_789,
    )
    fields.update(overrides)
    return TraceSample(**fields)


# -- value codec -----------------------------------------------------------


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -1,
        255,
        -256,
        2**62,
        -(2**62),
        1.5,
        "héllo",
        "",
        b"",
        b"\x00\xff" * 10,
        [1, "two", b"\x03", None],
        (4, (5, 6)),
        {"k": [1, 2], 3: b"v", "nested": {"a": None}},
    ],
)
def test_value_roundtrip(value):
    out = bytearray()
    encode_value(value, out)
    decoded, pos = decode_value(bytes(out))
    assert pos == len(out)
    assert decoded == value
    assert type(decoded) is type(value)


def test_value_rejects_unencodable():
    with pytest.raises(WireError):
        encode_value(object(), bytearray())


# -- runtime protocol messages ---------------------------------------------


def test_trace_request_roundtrip():
    req = TraceRequest(
        label="success-3", seed=10_042, breakpoint_uids=(12, 7, 9), breakpoint_skip=5
    )
    assert roundtrip(req, request_id=77) == req


def test_trace_response_roundtrip_with_sample():
    resp = TraceResponse(label="success-0", outcome="success", sample=make_sample())
    back = roundtrip(resp, request_id=3)
    assert back.label == resp.label
    assert back.outcome == resp.outcome
    assert back.sample == resp.sample


def test_trace_response_roundtrip_without_sample():
    resp = TraceResponse(label="s", outcome="step-limit", sample=None)
    assert roundtrip(resp) == resp


def test_trace_batch_request_roundtrip():
    batch = TraceBatchRequest(
        requests=(
            TraceRequest(label="success-0", seed=1, breakpoint_uids=(12,)),
            TraceRequest(
                label="speculative-3",
                seed=4,
                breakpoint_uids=(12, 7),
                breakpoint_skip=3,
            ),
        )
    )
    back = roundtrip(batch, request_id=42)
    assert back == batch
    assert isinstance(back.requests, tuple)


def test_trace_batch_response_roundtrip_positional():
    # the batch contract is positional: responses[i] answers requests[i],
    # so order must survive the codec exactly
    batch = TraceBatchResponse(
        responses=(
            TraceResponse(label="success-0", outcome="success", sample=make_sample()),
            TraceResponse(label="speculative-1", outcome="crash", sample=None),
            TraceResponse(label="speculative-2", outcome="unreachable", sample=None),
        )
    )
    back = roundtrip(batch, request_id=9)
    assert [r.label for r in back.responses] == [
        "success-0", "speculative-1", "speculative-2",
    ]
    assert [r.outcome for r in back.responses] == [
        "success", "crash", "unreachable",
    ]
    assert back.responses[0].sample == batch.responses[0].sample
    assert back.responses[1].sample is None


def test_trace_batch_empty_roundtrip():
    assert roundtrip(TraceBatchRequest(requests=())) == TraceBatchRequest(
        requests=()
    )
    assert roundtrip(TraceBatchResponse(responses=())) == TraceBatchResponse(
        responses=()
    )


def test_failure_notification_roundtrip():
    env = FailureEnvelope(
        bug_id="pbzip2-n/a",
        seed=4,
        notification=FailureNotification(
            bug_hint="pbzip2-n/a", failing_uid=89, failing_tid=1, time=999
        ),
        sample=make_sample(),
    )
    back = roundtrip(env, request_id=1)
    assert back.bug_id == env.bug_id
    assert back.seed == env.seed
    assert back.notification == env.notification
    assert back.sample == env.sample


# -- TraceSample payloads --------------------------------------------------


def test_sample_roundtrip_preserves_ring_bytes():
    sample = make_sample()
    back = sample_from_dict(sample_to_dict(sample))
    assert back == sample
    assert back.buffers[7] == bytes(range(256))  # every byte value survives


def test_sample_roundtrip_empty_buffer():
    sample = make_sample(buffers={0: b""}, positions={0: 0})
    back = sample_from_dict(sample_to_dict(sample))
    assert back.buffers == {0: b""}


def test_sample_roundtrip_no_failure():
    sample = make_sample(failing=False, failure=None, label="success-1")
    assert sample_from_dict(sample_to_dict(sample)) == sample


def test_sample_roundtrip_base_failure_report():
    sample = make_sample(
        failure=FailureReport(
            kind="hang", failing_uid=5, failing_tid=2, time=7, detail="stuck"
        )
    )
    back = sample_from_dict(sample_to_dict(sample))
    assert type(back.failure) is FailureReport
    assert back == sample


def test_sample_roundtrip_deadlock_report():
    sample = make_sample(
        failure=DeadlockReport(
            kind="deadlock",
            failing_uid=31,
            failing_tid=0,
            time=88,
            detail="ABBA",
            cycle=(
                DeadlockEntry(0, 0x1000, (0x2000,), 31, since=40),
                DeadlockEntry(1, 0x2000, (0x1000,), 57, since=44),
            ),
        )
    )
    back = sample_from_dict(sample_to_dict(sample))
    assert back == sample
    assert isinstance(back.failure, DeadlockReport)
    assert back.failure.cycle[1].held_locks == (0x1000,)


# -- fleet envelope messages -----------------------------------------------


@pytest.mark.parametrize(
    "msg",
    [
        Hello(agent_id="agent-007", bug_id="aget-2"),
        DiagnosisResult(
            signature="aget-2|crash|101",
            digest={"bug_kind": "order-violation", "f1": 1.0, "target_events": []},
        ),
        Reject(retry_after=0.25, reason="queue full"),
        Goodbye(agent_id="agent-007"),
        WireFault(message="first frame must be HELLO"),
    ],
)
def test_fleet_message_roundtrip(msg):
    assert roundtrip(msg, request_id=5) == msg


# -- frame damage ----------------------------------------------------------


def test_corrupt_checksum_rejected():
    frame = bytearray(encode_frame(make_request()))
    frame[-1] ^= 0xFF  # flip a payload byte; header checksum now disagrees
    with pytest.raises(WireError, match="checksum"):
        decode_frame(bytes(frame))


def test_truncated_payload_rejected():
    frame = encode_frame(make_request())
    with pytest.raises(WireError, match="truncated"):
        decode_frame(frame[:-3])


def test_truncated_header_rejected():
    frame = encode_frame(make_request())
    with pytest.raises(WireError, match="truncated"):
        decode_frame(frame[: HEADER_SIZE - 2])


def test_bad_magic_rejected():
    frame = bytearray(encode_frame(make_request()))
    frame[0:2] = b"zz"
    with pytest.raises(WireError, match="magic"):
        decode_frame(bytes(frame))


def test_bad_version_rejected():
    frame = bytearray(encode_frame(make_request()))
    frame[2] = 99
    with pytest.raises(WireError, match="version"):
        decode_frame(bytes(frame))


def make_request():
    return TraceRequest(label="probe", seed=1, breakpoint_uids=(2,))
