"""Resilience hardening: the specific failure modes the chaos layer
flushed out, pinned as regression tests.

* a duplicate/reconnect ``Hello`` supersedes the stale connection
  instead of leaking it in the rotation;
* a hung endpoint times out, leaves no pending-future litter, and the
  request reroutes;
* a failed diagnosis job is evicted so a re-report retries it;
* a result that cannot be delivered is counted, never silently lost;
* a full server restart mid-diagnosis is survived end to end.
"""

import asyncio
import socket
import threading
import time

import pytest

from repro.errors import FleetError
from repro.fleet import (
    DiagnosisJobQueue,
    FleetAgent,
    FleetMetrics,
    FleetServer,
    Hello,
)
from repro.fleet.server import AgentConn
from repro.fleet.wire import recv_frame_sock, send_frame_sock
from repro.ir import parse_module
from repro.runtime.protocol import TraceRequest

from tests.runtime.test_client_server import SRC, _workload

BUG = "custom-readbeforeinit"


@pytest.fixture(scope="module")
def custom_module():
    return parse_module(SRC)


def _server(custom_module, **kwargs):
    server = FleetServer(
        module_resolver=lambda bug_id: custom_module,
        workers=1,
        metrics=FleetMetrics(),
        **kwargs,
    )
    server.start()
    return server


def _raw_hello(server, agent_id):
    """A bare socket that joins the fleet and then does whatever the
    test says — including nothing at all (a hung endpoint)."""
    sock = socket.create_connection((server.host, server.port), timeout=5)
    send_frame_sock(sock, Hello(agent_id=agent_id, bug_id=BUG))
    return sock


def _conns(server):
    return server._agents.get(BUG, [])


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


# -- duplicate Hello --------------------------------------------------------


def test_rehello_on_same_connection_supersedes(custom_module):
    server = _server(custom_module)
    try:
        sock = _raw_hello(server, "flappy")
        assert _wait_for(lambda: len(_conns(server)) == 1)
        send_frame_sock(sock, Hello(agent_id="flappy", bug_id=BUG))
        assert _wait_for(lambda: server.metrics.counter("agents_superseded") >= 1)
        # exactly one live connection for the agent id, never two
        assert len(_conns(server)) == 1
        assert _conns(server)[0].alive
        sock.close()
    finally:
        server.stop()


def test_reconnect_supersedes_stale_connection(custom_module):
    server = _server(custom_module)
    try:
        first = _raw_hello(server, "flappy")
        assert _wait_for(lambda: len(_conns(server)) == 1)
        stale = _conns(server)[0]
        # the agent's process restarts: a new connection, same identity
        second = _raw_hello(server, "flappy")
        assert _wait_for(lambda: server.metrics.counter("agents_superseded") >= 1)
        assert len(_conns(server)) == 1
        assert _conns(server)[0] is not stale
        assert not stale.alive
        assert stale.pending == {}  # superseding failed (and cleared) them
        first.close()
        second.close()
    finally:
        server.stop()


# -- hung endpoint ----------------------------------------------------------


def test_hung_endpoint_times_out_reroutes_and_leaks_nothing(custom_module):
    # one endpoint that joined and then went catatonic, one real agent;
    # the diagnosis must complete by rerouting around the hung one
    server = _server(custom_module, trace_reply_timeout=0.3)
    stop = threading.Event()
    hung = _raw_hello(server, "catatonic")
    try:
        assert _wait_for(lambda: len(_conns(server)) == 1)
        hung_conn = _conns(server)[0]
        agent = FleetAgent("live", BUG, custom_module, _workload,
                           server.host, server.port)
        agent.connect()
        result = agent.produce_and_report(stop)
        agent.close()
        assert result.digest["diagnosed"]
        # the hung endpoint was tried, timed out, and cleaned up after
        assert server.metrics.counter("trace_request_timeouts") >= 1
        assert hung_conn.pending == {}
    finally:
        stop.set()
        hung.close()
        server.stop()


def test_request_fails_cleanly_when_every_endpoint_hangs(custom_module):
    server = _server(
        custom_module, trace_reply_timeout=10.0, request_timeout=0.5
    )
    hung = _raw_hello(server, "catatonic")
    try:
        assert _wait_for(lambda: len(_conns(server)) == 1)
        hung_conn = _conns(server)[0]
        request = TraceRequest(label="probe", seed=1, breakpoint_uids=(2,))
        with pytest.raises(FleetError, match="within"):
            server._remote_request(BUG, request)
        assert hung_conn.pending == {}  # the timeout cleaned up behind itself
        assert server.metrics.counter("trace_request_timeouts") >= 1
    finally:
        hung.close()
        server.stop()


def test_no_endpoint_at_all_fails_with_backoff_not_spin(custom_module):
    server = _server(custom_module, request_timeout=0.3)
    try:
        request = TraceRequest(label="probe", seed=1, breakpoint_uids=(2,))
        started = time.perf_counter()
        with pytest.raises(FleetError):
            server._remote_request("no-such-bug", request)
        # bounded by the wall clock, and the loop slept between attempts
        # instead of spinning (a spin would still return fast — what we
        # pin here is that the budget, not an attempt count, ended it)
        assert time.perf_counter() - started < 5.0
    finally:
        server.stop()


# -- failed jobs retry ------------------------------------------------------


def test_failed_job_is_evicted_so_a_rereport_retries():
    metrics = FleetMetrics()
    queue = DiagnosisJobQueue(workers=1, metrics=metrics)
    try:
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient outage mid-collection")
            return "diagnosed"

        future, dedup = queue.submit("sig", flaky)
        assert not dedup
        with pytest.raises(RuntimeError):
            future.result(timeout=5)
        # the failure was evicted: same signature runs again, fresh
        assert _wait_for(lambda: queue.result_for("sig") is None)
        future2, dedup2 = queue.submit("sig", flaky)
        assert not dedup2
        assert future2.result(timeout=5) == "diagnosed"
        assert metrics.counter("jobs_failed") == 1
        assert metrics.counter("jobs_completed") == 1
    finally:
        queue.shutdown()


# -- delivery accounting ----------------------------------------------------


def test_delivery_to_a_vanished_reporter_is_counted(custom_module):
    server = _server(custom_module)
    try:
        dead = AgentConn("ghost", BUG, writer=None, alive=False)
        asyncio.run_coroutine_threadsafe(
            server._deliver_one(dead, b"frame"), server._loop
        ).result(timeout=5)
        assert server.metrics.counter("result_delivery_failures") == 1
        assert server.metrics.counter("results_delivered") == 0
    finally:
        server.stop()


# -- server restart ---------------------------------------------------------


def test_diagnosis_survives_a_server_restart(custom_module):
    # more traces wanted -> a longer collection, so the restart provably
    # lands while the diagnosis is mid-flight, not after it finished
    server = _server(custom_module, success_traces_wanted=25)
    stop = threading.Event()
    restarted = threading.Event()

    def restart_mid_collection():
        if _wait_for(
            lambda: server.metrics.counter("trace_requests_sent") >= 3,
            timeout=30,
        ):
            server.restart()
            restarted.set()

    try:
        agent = FleetAgent("survivor", BUG, custom_module, _workload,
                           server.host, server.port)
        agent.connect()
        restarter = threading.Thread(target=restart_mid_collection, daemon=True)
        restarter.start()
        result = agent.produce_and_report(stop)
        restarter.join(timeout=10)
        agent.close()
        assert restarted.is_set()
        assert result.digest["diagnosed"]
        assert server.metrics.counter("server_restarts") == 1
        # the agent noticed and came back (reconnect or re-report)
        assert agent.reconnects + agent.failure_resends >= 1
    finally:
        stop.set()
        server.stop()
