"""Job-queue semantics: dedup, backpressure, draining shutdown."""

import threading
import time

import pytest

from repro.fleet.jobs import DiagnosisJobQueue, JobRejected, QueueClosed
from repro.fleet.metrics import FleetMetrics


def test_identical_signatures_run_once():
    queue = DiagnosisJobQueue(workers=2, max_pending=4)
    release = threading.Event()
    calls = []

    def job():
        calls.append(1)
        release.wait(timeout=10)
        return "root-cause"

    futures = []
    dedups = []

    def submit():
        future, dedup = queue.submit("mysql-3596|crash|42", job)
        futures.append(future)
        dedups.append(dedup)

    # concurrent reports of the same failure signature from many endpoints
    threads = [threading.Thread(target=submit) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    release.set()
    results = {f.result(timeout=10) for f in futures}
    queue.shutdown()
    assert len(calls) == 1  # one diagnosis, not eight
    assert results == {"root-cause"}
    assert sum(dedups) == 7
    assert queue.metrics.counter("jobs_deduplicated") == 7
    assert queue.metrics.counter("jobs_submitted") == 1


def test_completed_signature_serves_cached_result():
    queue = DiagnosisJobQueue(workers=1, max_pending=2)
    first, dedup_first = queue.submit("sig", lambda: 99)
    assert first.result(timeout=10) == 99
    again, dedup_again = queue.submit("sig", lambda: pytest.fail("must not rerun"))
    assert dedup_again and not dedup_first
    assert again.result(timeout=1) == 99
    queue.shutdown()


def test_backpressure_rejects_when_full():
    queue = DiagnosisJobQueue(workers=1, max_pending=2, retry_after=0.125)
    release = threading.Event()
    queue.submit("a", lambda: release.wait(10))
    queue.submit("b", lambda: release.wait(10))
    with pytest.raises(JobRejected) as excinfo:
        queue.submit("c", lambda: None)
    assert excinfo.value.retry_after == 0.125
    assert queue.metrics.counter("jobs_rejected") == 1
    # a duplicate of an in-flight signature is NOT new load: accepted even
    # when the queue is full
    _, dedup = queue.submit("a", lambda: None)
    assert dedup
    release.set()
    queue.shutdown()


def test_backpressure_recovers_after_drain():
    queue = DiagnosisJobQueue(workers=2, max_pending=1)
    gate = threading.Event()
    blocked, _ = queue.submit("slow", lambda: gate.wait(10))
    with pytest.raises(JobRejected):
        queue.submit("next", lambda: 1)
    gate.set()
    blocked.result(timeout=10)
    deadline = time.monotonic() + 5
    while queue.depth and time.monotonic() < deadline:
        time.sleep(0.01)
    future, dedup = queue.submit("next", lambda: 1)
    assert not dedup and future.result(timeout=10) == 1
    queue.shutdown()


def test_shutdown_drains_in_flight_jobs():
    metrics = FleetMetrics()
    queue = DiagnosisJobQueue(workers=2, max_pending=8, metrics=metrics)
    started = threading.Event()

    def slow(tag):
        started.set()
        time.sleep(0.05)
        return tag

    futures = [queue.submit(f"sig-{i}", lambda i=i: slow(i))[0] for i in range(4)]
    started.wait(timeout=10)
    queue.shutdown(wait=True)  # must block until every accepted job finishes
    assert all(f.done() for f in futures)
    assert sorted(f.result() for f in futures) == [0, 1, 2, 3]
    assert metrics.counter("jobs_completed") == 4


def test_shutdown_refuses_new_jobs():
    queue = DiagnosisJobQueue(workers=1, max_pending=2)
    queue.shutdown()
    with pytest.raises(QueueClosed):
        queue.submit("late", lambda: 1)


def test_queue_depth_gauge_tracks_pending():
    metrics = FleetMetrics()
    queue = DiagnosisJobQueue(workers=1, max_pending=4, metrics=metrics)
    gate = threading.Event()
    queue.submit("a", lambda: gate.wait(10))
    queue.submit("b", lambda: None)
    assert queue.depth == 2
    assert metrics.as_dict()["gauges"]["queue_depth"] == 2
    gate.set()
    queue.shutdown(wait=True)
    assert queue.depth == 0


def _drain_tracking(queue, deadline=5.0):
    # _finished runs on the executor thread after the future resolves;
    # give the callback a bounded moment to fire
    end = time.monotonic() + deadline
    while queue.tracked_submissions and time.monotonic() < end:
        time.sleep(0.005)
    return queue.tracked_submissions


def test_completed_jobs_release_submit_tracking():
    # Regression: successful jobs never popped their _submitted entry,
    # so the submit-timestamp map grew one entry per distinct signature
    # for the life of the queue.
    queue = DiagnosisJobQueue(workers=2, max_pending=8)
    try:
        futures = [
            queue.submit(f"sig-{i}", lambda i=i: f"report-{i}")[0]
            for i in range(6)
        ]
        for f in futures:
            assert f.result(timeout=10).startswith("report-")
        assert _drain_tracking(queue) == 0
    finally:
        queue.shutdown(wait=True)


def test_failed_jobs_release_submit_tracking():
    queue = DiagnosisJobQueue(workers=1, max_pending=4)

    def boom():
        raise RuntimeError("injected")

    try:
        future, _ = queue.submit("sig-err", boom)
        with pytest.raises(RuntimeError):
            future.result(timeout=10)
        assert _drain_tracking(queue) == 0
        # the signature is resubmittable (not served from a dead future)
        again, dedup = queue.submit("sig-err", lambda: "ok")
        assert not dedup
        assert again.result(timeout=10) == "ok"
    finally:
        queue.shutdown(wait=True)


# -- completion listeners ----------------------------------------------------


def test_completion_listener_fires_for_successes_only():
    queue = DiagnosisJobQueue(workers=1, max_pending=4)
    seen = []
    queue.add_completion_listener(lambda sig, result: seen.append((sig, result)))

    def boom():
        raise RuntimeError("injected")

    try:
        ok, _ = queue.submit("sig-ok", lambda: "report")
        assert ok.result(timeout=10) == "report"
        bad, _ = queue.submit("sig-bad", boom)
        with pytest.raises(RuntimeError):
            bad.result(timeout=10)
        deadline = time.monotonic() + 5
        while not seen and time.monotonic() < deadline:
            time.sleep(0.005)
        # only the successful diagnosis is announced: the failed job was
        # evicted and has no result a listener could persist
        assert seen == [("sig-ok", "report")]
        # dedup hits reuse the cached future and do not re-announce
        again, dedup = queue.submit("sig-ok", lambda: "other")
        assert dedup and again.result(timeout=10) == "report"
        time.sleep(0.05)
        assert seen == [("sig-ok", "report")]
    finally:
        queue.shutdown(wait=True)


def test_completion_listener_errors_are_counted_not_raised():
    metrics = FleetMetrics()
    queue = DiagnosisJobQueue(workers=1, max_pending=4, metrics=metrics)

    def angry_listener(signature, result):
        raise RuntimeError("listener bug")

    calm = []
    queue.add_completion_listener(angry_listener)
    queue.add_completion_listener(lambda s, r: calm.append(s))
    try:
        future, _ = queue.submit("sig", lambda: 1)
        assert future.result(timeout=10) == 1
        deadline = time.monotonic() + 5
        while not calm and time.monotonic() < deadline:
            time.sleep(0.005)
        # the broken listener is counted; later listeners still ran
        assert metrics.counter("completion_listener_errors") == 1
        assert calm == ["sig"]
    finally:
        queue.shutdown(wait=True)
