"""FleetMetrics: counters, timers, snapshot rendering."""

import threading

from repro.fleet.metrics import FleetMetrics


def test_counters_accumulate():
    m = FleetMetrics()
    m.inc("failures_received")
    m.inc("failures_received", 4)
    assert m.counter("failures_received") == 5
    assert m.counter("unknown") == 0


def test_counters_thread_safe():
    m = FleetMetrics()

    def bump():
        for _ in range(1000):
            m.inc("n")

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert m.counter("n") == 8000


def test_timer_context_manager_records():
    m = FleetMetrics()
    with m.timer("diagnosis_latency"):
        pass
    with m.timer("diagnosis_latency"):
        pass
    timings = m.timings("diagnosis_latency")
    assert len(timings) == 2
    assert all(t >= 0 for t in timings)
    assert m.median("diagnosis_latency") >= 0


def test_as_dict_and_render():
    m = FleetMetrics()
    m.inc("failures_received", 3)
    m.gauge("queue_depth", 2)
    m.observe("analysis_latency", 0.25)
    m.observe("analysis_latency", 0.75)
    snap = m.as_dict()
    assert snap["counters"] == {"failures_received": 3}
    assert snap["gauges"] == {"queue_depth": 2}
    summary = snap["timers"]["analysis_latency"]
    assert summary["count"] == 2
    assert summary["median_s"] == 0.5
    assert summary["max_s"] == 0.75
    text = m.render()
    assert "failures_received" in text
    assert "queue_depth" in text
    assert "analysis_latency" in text
