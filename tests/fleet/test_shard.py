"""Consistent-hash ring: determinism, bounded movement, balance."""

import pytest

from repro.errors import FleetError
from repro.fleet.shard import DEFAULT_VNODES, HashRing, ShardRouter


def _signatures(n: int) -> list[str]:
    # synthetic but signature-shaped: many bugs, many failing PCs
    return [f"bug-{i % 37}|crash|{i}" for i in range(n)]


def test_placement_is_deterministic_across_instances():
    names = [f"shard-{i}" for i in range(5)]
    a = ShardRouter(names)
    b = ShardRouter(reversed(names))  # construction order must not matter
    sigs = _signatures(1_000)
    assert [a.route(s) for s in sigs] == [b.route(s) for s in sigs]


def test_removal_moves_only_the_leavers_keys():
    n = 5
    router = ShardRouter([f"shard-{i}" for i in range(n)])
    sigs = _signatures(10_000)
    before = {s: router.route(s) for s in sigs}
    router.remove_shard("shard-2")
    moved = 0
    for s in sigs:
        after = router.route(s)
        if after != before[s]:
            # consistent hashing: survivors' keys never move
            assert before[s] == "shard-2"
            moved += 1
    # the leaver owned ~1/N of the keys; movement stays under 2/N
    assert 0 < moved < 2 * len(sigs) / n


def test_add_back_restores_the_original_placement():
    router = ShardRouter([f"shard-{i}" for i in range(4)])
    sigs = _signatures(2_000)
    before = {s: router.route(s) for s in sigs}
    router.remove_shard("shard-1")
    router.add_shard("shard-1")
    assert {s: router.route(s) for s in sigs} == before


def test_placement_is_balanced_within_2x_ideal():
    shards = 10
    sigs = _signatures(10_000)
    router = ShardRouter([f"shard-{i}" for i in range(shards)])
    groups = router.placement(sigs)
    ideal = len(sigs) / shards
    assert sum(len(g) for g in groups.values()) == len(sigs)
    for name, keys in groups.items():
        assert len(keys) <= 2 * ideal, (
            f"{name} owns {len(keys)} of {len(sigs)} keys "
            f"(ideal {ideal:.0f})"
        )
        assert len(keys) >= ideal / 2, f"{name} starved at {len(keys)} keys"


def test_ring_membership_errors():
    ring = HashRing(["a", "b"])
    with pytest.raises(FleetError):
        ring.add("a")
    with pytest.raises(FleetError):
        ring.remove("missing")
    ring.remove("a")
    ring.remove("b")
    with pytest.raises(FleetError):
        ring.node_for("key")
    with pytest.raises(FleetError):
        HashRing(vnodes=0)


def test_vnodes_default_smooths_the_ring():
    ring = HashRing(["a", "b", "c"])
    assert len(ring._ring) == 3 * DEFAULT_VNODES
    assert len(ring) == 3
    assert ring.nodes == frozenset({"a", "b", "c"})
