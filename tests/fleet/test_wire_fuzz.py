"""Wire fuzzing: no sequence of damaged bytes may crash or hang a
decoder — every failure mode is a ``WireError``, the one exception the
transports and the resilience machinery are built to absorb.

All randomness is seeded, so a failing case replays.
"""

import asyncio
import random
import struct

import pytest

from repro.errors import WireError
from repro.fleet.wire import (
    HEADER_SIZE,
    MAX_DEPTH,
    MAX_PAYLOAD,
    Hello,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
    read_frame_async,
)
from repro.runtime.protocol import TraceRequest, TraceResponse

from tests.fleet.test_wire import make_sample

TRIALS = 300


def _frames():
    return [
        encode_frame(Hello(agent_id="fuzz", bug_id="aget-2"), 1),
        encode_frame(
            TraceRequest(label="s-1", seed=9, breakpoint_uids=(2, 5),
                         breakpoint_skip=1),
            42,
        ),
        encode_frame(
            TraceResponse(label="s-1", outcome="success", sample=make_sample()),
            42,
        ),
    ]


def _decode_or_wire_error(data):
    """The fuzz contract: decode succeeds or raises WireError — never
    any other exception, never a hang."""
    try:
        decode_frame(data)
    except WireError:
        pass


# -- bit flips --------------------------------------------------------------


def test_single_bit_flips_never_escape_wire_error():
    rng = random.Random(0xC0FFEE)
    frames = _frames()
    for _ in range(TRIALS):
        frame = bytearray(rng.choice(frames))
        bit = rng.randrange(len(frame) * 8)
        frame[bit // 8] ^= 1 << (bit % 8)
        _decode_or_wire_error(bytes(frame))


def test_byte_burst_corruption_never_escapes_wire_error():
    rng = random.Random(0xDECAF)
    frames = _frames()
    for _ in range(TRIALS):
        frame = bytearray(rng.choice(frames))
        start = rng.randrange(len(frame))
        for i in range(start, min(start + rng.randrange(1, 32), len(frame))):
            frame[i] = rng.randrange(256)
        _decode_or_wire_error(bytes(frame))


# -- truncation -------------------------------------------------------------


def test_every_truncation_prefix_is_rejected():
    for frame in _frames():
        for cut in range(len(frame)):
            with pytest.raises(WireError):
                decode_frame(frame[:cut])


# -- hostile length fields --------------------------------------------------


def _header(msg_type=1, request_id=0, length=0, crc=0):
    return struct.pack("!2sBBIII", b"SX", 1, msg_type, request_id, length, crc)


def test_oversized_length_field_rejected():
    with pytest.raises(WireError, match="exceeds"):
        decode_frame(_header(length=MAX_PAYLOAD + 1))
    with pytest.raises(WireError, match="exceeds"):
        decode_frame(_header(length=0xFFFFFFFF) + b"\x00" * 64)


def test_declared_length_beyond_data_rejected():
    with pytest.raises(WireError, match="truncated"):
        decode_frame(_header(length=1000) + b"\x00" * 10)


def test_value_length_prefix_beyond_payload_rejected():
    # a str tag claiming 2**31 bytes inside a tiny payload
    payload = b"\x05" + struct.pack("!I", 2**31) + b"abc"
    with pytest.raises(WireError):
        decode_value(payload)


# -- nesting bombs ----------------------------------------------------------


def test_deep_nesting_raises_wire_error_not_recursion_error():
    # 1000 nested single-element lists, then a None: a stack bomb if the
    # decoder recursed unbounded
    depth = 1000
    payload = (b"\x07" + struct.pack("!I", 1)) * depth + b"\x00"
    with pytest.raises(WireError, match="nesting"):
        decode_value(payload)


def test_deep_nesting_rejected_on_encode_too():
    bomb = []
    for _ in range(MAX_DEPTH + 2):
        bomb = [bomb]
    with pytest.raises(WireError, match="nesting"):
        encode_value(bomb, bytearray())


def test_legal_nesting_depth_roundtrips():
    value = "leaf"
    for _ in range(MAX_DEPTH - 2):
        value = [value]
    out = bytearray()
    encode_value(value, out)
    decoded, pos = decode_value(bytes(out))
    assert pos == len(out)
    assert decoded == value


# -- random garbage ---------------------------------------------------------


def test_random_garbage_never_escapes_wire_error():
    rng = random.Random(0xBADF00D)
    for _ in range(TRIALS):
        data = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 200)))
        with pytest.raises((WireError,)):
            decode_frame(data)


def test_garbage_behind_a_valid_header_never_escapes_wire_error():
    # worst case for the payload codec: the header is pristine and the
    # checksum matches, but the payload bytes are attacker-shaped
    rng = random.Random(0x5EED)
    import zlib

    for _ in range(TRIALS):
        payload = bytes(
            rng.randrange(256) for _ in range(rng.randrange(0, 120))
        )
        frame = _header(
            msg_type=rng.randrange(0, 12),
            length=len(payload),
            crc=zlib.crc32(payload),
        ) + payload
        _decode_or_wire_error(frame)


# -- property: roundtrip of random well-formed values -----------------------


def _random_value(rng, depth=0):
    kinds = ["none", "bool", "int", "float", "str", "bytes"]
    if depth < 4:
        kinds += ["list", "tuple", "dict"]
    kind = rng.choice(kinds)
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "int":
        return rng.randrange(-(2**63), 2**63)
    if kind == "float":
        return rng.uniform(-1e12, 1e12)
    if kind == "str":
        return "".join(chr(rng.randrange(32, 0x2FF)) for _ in range(rng.randrange(8)))
    if kind == "bytes":
        return bytes(rng.randrange(256) for _ in range(rng.randrange(16)))
    if kind in ("list", "tuple"):
        items = [_random_value(rng, depth + 1) for _ in range(rng.randrange(4))]
        return items if kind == "list" else tuple(items)
    return {
        _random_value(rng, 4): _random_value(rng, depth + 1)
        for _ in range(rng.randrange(4))
    }


def test_random_values_roundtrip_exactly():
    rng = random.Random(1234)
    for _ in range(TRIALS):
        value = {"v": _random_value(rng)}
        out = bytearray()
        encode_value(value, out)
        decoded, pos = decode_value(bytes(out))
        assert pos == len(out)
        assert decoded == value


# -- the async reader -------------------------------------------------------


def _read_fed(data, frame_timeout=None):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame_async(reader, frame_timeout=frame_timeout)

    return asyncio.run(go())


def test_async_reader_fuzz_matches_sync_contract():
    rng = random.Random(0xA51)
    frames = _frames()
    for _ in range(100):
        frame = bytearray(rng.choice(frames))
        frame[rng.randrange(len(frame))] ^= rng.randrange(1, 256)
        try:
            _read_fed(bytes(frame))
        except (WireError, ConnectionError):
            pass


def test_async_reader_rejects_oversized_length():
    with pytest.raises(WireError, match="exceeds"):
        _read_fed(_header(length=MAX_PAYLOAD + 1))


def test_async_reader_times_out_a_hung_mid_frame_peer():
    # header promises 100 payload bytes that never arrive and the
    # stream never closes: the frame timeout must sever it
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(_header(length=100) + b"\x01\x02")
        # no feed_eof: the peer is alive but wedged
        with pytest.raises(WireError, match="hung mid-frame"):
            await read_frame_async(reader, frame_timeout=0.1)

    asyncio.run(go())


def test_async_reader_reads_back_to_back_frames():
    frames = _frames()

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(b"".join(frames))
        reader.feed_eof()
        out = []
        for _ in frames:
            msg, rid = await read_frame_async(reader)
            out.append((type(msg).__name__, rid))
        return out

    assert asyncio.run(go()) == [
        ("Hello", 1),
        ("TraceRequest", 42),
        ("TraceResponse", 42),
    ]
