"""Sharded fleet + persistent store: dedup, warm restart, convergence.

The three acceptance properties of the sharded design:

* **Cross-shard dedup** — the same signature reported directly to two
  different shards runs the diagnosis pipeline exactly once; the second
  shard serves the stored report (proven by store counters).
* **Warm restart** — a brand-new server process pointed at the same
  store file re-diagnoses nothing for stored signatures and reproduces
  the cold run's digests byte for byte.
* **Chaos convergence** — a 3-shard run with a shard killed mid-flight
  (shared store, same ports) converges to digests identical to the
  fault-free single-server in-process diagnosis.
"""

import threading
import time

import pytest

from repro.corpus import bug
from repro.fleet import (
    FleetAgent,
    FleetConfig,
    FleetMetrics,
    FleetServer,
    ShardedFleet,
    report_digest,
    run_fleet,
)
from repro.fleet.chaos import FaultPlan
from repro.ir import parse_module
from repro.runtime import SnorlaxClient, SnorlaxServer
from repro.store import DiagnosisStore

from tests.runtime.test_client_server import SRC, _workload

BUG_ID = "custom-readbeforeinit"


@pytest.fixture(scope="module")
def custom_module():
    return parse_module(SRC)


def _report_once(module, host, port, agent_id, stop):
    agent = FleetAgent(agent_id, BUG_ID, module, _workload, host, port)
    agent.connect()
    try:
        return agent.produce_and_report(stop)
    finally:
        agent.close()


def test_same_signature_on_two_shards_diagnoses_once(custom_module):
    store = DiagnosisStore()
    metrics = FleetMetrics()
    fleet = ShardedFleet(
        shards=2,
        store=store,
        metrics=metrics,
        module_resolver=lambda bug_id: custom_module,
        workers=1,
        max_pending=4,
        success_traces_wanted=3,
    )
    addresses = fleet.start()
    stop = threading.Event()
    try:
        results = [
            _report_once(custom_module, *addresses[name], f"agent-{name}", stop)
            for name in fleet.shard_names
        ]
    finally:
        stop.set()
        fleet.stop()
    assert results[0].signature == results[1].signature
    assert results[0].digest == results[1].digest
    # exactly one pipeline execution fleet-wide...
    assert metrics.counter("diagnoses_completed") == 1
    assert metrics.counter("jobs_submitted") == 1
    # ...and the second shard provably served from the shared store
    assert metrics.counter("diagnoses_from_store") == 1
    assert store.report_stats.hits >= 1
    assert store.report_stats.writes == 1
    store.close()


def test_warm_restart_skips_stored_signatures(custom_module, tmp_path):
    path = str(tmp_path / "fleet.db")
    resolver = lambda bug_id: custom_module  # noqa: E731
    stop = threading.Event()

    store_cold = DiagnosisStore(path)
    cold_metrics = FleetMetrics()
    server = FleetServer(
        module_resolver=resolver,
        store=store_cold,
        metrics=cold_metrics,
        workers=1,
        success_traces_wanted=3,
    )
    host, port = server.start()
    try:
        cold = _report_once(custom_module, host, port, "agent-cold", stop)
    finally:
        server.stop()
        store_cold.close()
    assert cold_metrics.counter("diagnoses_completed") == 1

    # a brand-new server "process": fresh metrics, fresh store handle,
    # same file — the stored signature must not be re-diagnosed
    store_warm = DiagnosisStore(path)
    assert store_warm.counts()["reports"] == 1
    warm_metrics = FleetMetrics()
    server = FleetServer(
        module_resolver=resolver,
        store=store_warm,
        metrics=warm_metrics,
        workers=1,
        success_traces_wanted=3,
    )
    host, port = server.start()
    try:
        warm = _report_once(custom_module, host, port, "agent-warm", stop)
    finally:
        server.stop()
        store_warm.close()

    assert warm.signature == cold.signature
    assert warm.digest == cold.digest
    assert warm_metrics.counter("diagnoses_completed") == 0
    assert warm_metrics.counter("jobs_submitted") == 0
    assert warm_metrics.counter("diagnoses_from_store") == 1


def test_shard_kill_restart_keeps_serving(custom_module):
    # kill a shard in place mid-session: agents reconnect and the next
    # report of a stored signature is still served, digest unchanged
    store = DiagnosisStore()
    metrics = FleetMetrics()
    fleet = ShardedFleet(
        shards=2,
        store=store,
        metrics=metrics,
        module_resolver=lambda bug_id: custom_module,
        workers=1,
        success_traces_wanted=3,
    )
    addresses = fleet.start()
    stop = threading.Event()
    try:
        name = fleet.shard_names[0]
        first = _report_once(
            custom_module, *addresses[name], "agent-before", stop
        )
        fleet.restart_shard(name)
        time.sleep(0.05)  # let the listener come back on the same port
        second = _report_once(
            custom_module, *addresses[name], "agent-after", stop
        )
    finally:
        stop.set()
        fleet.stop()
    assert second.digest == first.digest
    assert metrics.counter("shard_kills") == 1
    assert metrics.counter("server_restarts") == 1
    # the post-kill report came from the store, not a second diagnosis
    assert metrics.counter("diagnoses_completed") == 1
    store.close()


def test_remove_shard_rebalances_and_store_covers_moved_keys(custom_module):
    store = DiagnosisStore()
    metrics = FleetMetrics()
    fleet = ShardedFleet(
        shards=3,
        store=store,
        metrics=metrics,
        module_resolver=lambda bug_id: custom_module,
        workers=1,
        max_pending=4,
        success_traces_wanted=3,
    )
    addresses = fleet.start()
    stop = threading.Event()
    try:
        client = SnorlaxClient(custom_module, _workload)
        failing = client.find_runs(True, 1)[0]
        from repro.fleet import signature_for_failure

        signature = signature_for_failure(BUG_ID, failing)
        owner = fleet.route(signature)
        first = _report_once(
            custom_module, *addresses[owner], "agent-owner", stop
        )
        # the owner leaves for good; the signature lands on a survivor
        fleet.remove_shard(owner)
        assert owner not in fleet.shard_names
        new_owner = fleet.route(signature)
        assert new_owner != owner
        second = _report_once(
            custom_module, *fleet.address_of(new_owner), "agent-moved", stop
        )
    finally:
        stop.set()
        fleet.stop()
    assert second.digest == first.digest
    assert metrics.counter("shards_removed") == 1
    assert metrics.counter("diagnoses_completed") == 1  # store covered it
    assert metrics.counter("diagnoses_from_store") == 1
    store.close()


# -- the acceptance run: 3-shard chaos vs fault-free single server ----------


@pytest.fixture(scope="module")
def sharded_chaos_run(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("store") / "fleet.db")
    metrics = FleetMetrics()
    config = FleetConfig(
        agents=8,
        bug_ids=("pbzip2-n/a", "memcached-271"),
        reporters_per_bug=2,
        workers=2,
        max_pending=8,
        shards=3,
        store_path=path,
        chaos=FaultPlan(seed=11, server_restart_after_s=0.75),
    )
    result = run_fleet(config, metrics=metrics)
    return result, metrics, path


def test_sharded_chaos_run_is_clean(sharded_chaos_run):
    result, metrics, _ = sharded_chaos_run
    errors = [o for o in result.outcomes if o.error]
    assert not errors, errors
    # one signature per bug: all reporters of a bug collide on it
    assert {s.split("|", 1)[0] for s in result.digests} == {
        "pbzip2-n/a",
        "memcached-271",
    }
    # every reporter routed itself by signature (4 reporters, 2 bugs)
    assert metrics.counter("shard_routes") >= 4


def test_sharded_chaos_digests_match_single_server_in_process(
    sharded_chaos_run,
):
    result, _, _ = sharded_chaos_run
    assert result.digests, "chaos run produced no diagnoses"
    for signature, digest in sorted(result.digests.items()):
        if digest.get("degraded"):
            continue  # thinner evidence; not comparable
        bug_id = signature.split("|", 1)[0]
        spec = bug(bug_id)
        client = SnorlaxClient(spec.module(), spec.workload, entry=spec.entry)
        failing = client.find_runs(True, 1)[0]
        expected = report_digest(
            SnorlaxServer(spec.module()).diagnose(failing, client).report
        )
        assert digest == expected, f"{signature} diverged from in-process"


def test_sharded_chaos_run_persisted_its_reports(sharded_chaos_run):
    result, _, path = sharded_chaos_run
    stored_signatures = set()
    with DiagnosisStore(path) as db:
        stored_signatures = set(db.signatures())
    non_degraded = {
        s for s, d in result.digests.items() if not d.get("degraded")
    }
    assert non_degraded <= stored_signatures
