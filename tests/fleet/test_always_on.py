"""The always-on fleet: heartbeats, stale eviction, anomaly-triggered
diagnosis, and provenance served live.

The acceptance story: a monitored endpoint that goes silent is evicted
(and its socket closed); when it comes back it is re-admitted; the
anomaly detector fires exactly once per signature per window; an
anomaly-triggered diagnosis digests identically to the on-demand
diagnosis of the same failure; and the evidence graph a warm restart
serves from the store digests identically to the cold run's graph.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.fleet import (
    EwmaAnomalyDetector,
    FleetAgent,
    FleetServer,
    Heartbeat,
    MonitorLoop,
    MonitorSample,
    decode_frame,
    encode_frame,
    report_digest,
)
from repro.fleet.shard import signature_for_failure
from repro.ir import parse_module
from repro.provenance import EvidenceGraph, report_key
from repro.runtime import SnorlaxClient, SnorlaxServer
from repro.store import DiagnosisStore

from tests.fleet.test_wire import make_sample
from tests.runtime.test_client_server import SRC, _workload


@pytest.fixture(scope="module")
def custom_module():
    return parse_module(SRC)


@pytest.fixture(scope="module")
def failing_run(custom_module):
    client = SnorlaxClient(custom_module, _workload)
    return client.find_runs(True, 1)[0]


class _Clock:
    """Injectable monotonic time: the soak compresses hours into it."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def _trippy_detector():
    # alpha == threshold with min_observations=1: the FIRST failing
    # sample trips, pinning the triggering seed to the on-demand seed
    return EwmaAnomalyDetector(
        alpha=0.5, failure_threshold=0.5, min_observations=1, window_s=1e9
    )


def _inert_detector():
    # scores live in [0, 1]: thresholds above 1 can never trip, so the
    # liveness tests stay pure liveness (no surprise diagnosis jobs)
    return EwmaAnomalyDetector(failure_threshold=1.1, hang_threshold=1.1)


# -- wire round-trips -------------------------------------------------------


def _roundtrip(msg, request_id=3):
    decoded, rid = decode_frame(encode_frame(msg, request_id))
    assert rid == request_id
    return decoded


def test_heartbeat_round_trips():
    beat = Heartbeat(
        agent_id="ep-7", seq=41, uptime_s=12.5, samples_sent=80, failures_seen=3
    )
    assert _roundtrip(beat) == beat


def test_monitor_sample_round_trips_with_and_without_evidence():
    success = MonitorSample(
        bug_id="pbzip2-n/a", seed=9, outcome="success", hang=False, sample=None
    )
    assert _roundtrip(success) == success
    failure = MonitorSample(
        bug_id="pbzip2-n/a",
        seed=10,
        outcome="failure",
        hang=True,
        sample=make_sample(),
    )
    assert _roundtrip(failure) == failure


# -- anomaly detector -------------------------------------------------------


def test_detector_waits_for_min_observations():
    det = EwmaAnomalyDetector(
        alpha=0.5, failure_threshold=0.5, min_observations=3, window_s=60.0
    )
    assert det.observe("b", "b|crash|1", False, 0.0) is None  # obs 1
    assert det.observe("b", "b|crash|1", False, 1.0) is None  # obs 2
    event = det.observe("b", "b|crash|1", False, 2.0)  # obs 3: armed
    assert event is not None
    assert event.reason == "failure-rate"
    assert event.signature == "b|crash|1"
    assert event.score >= 0.5


def test_detector_fires_once_per_signature_per_window():
    det = _trippy_detector()
    det.window_s = 60.0
    assert det.observe("b", "b|crash|1", False, 10.0) is not None
    # still hot, but inside the window: suppressed
    assert det.observe("b", "b|crash|1", False, 20.0) is None
    assert det.observe("b", "b|crash|1", False, 69.0) is None
    # a different signature has its own window
    assert det.observe("b", "b|crash|2", False, 21.0) is not None
    # past the window the first signature re-trips
    assert det.observe("b", "b|crash|1", False, 71.0) is not None


def test_hangs_trip_at_the_lower_threshold():
    det = EwmaAnomalyDetector(
        alpha=0.4, failure_threshold=0.5, hang_threshold=0.3,
        min_observations=1, window_s=60.0,
    )
    # one hang: score 0.4 < failure threshold, but hang_score 0.4 >= 0.3
    event = det.observe("b", "b|deadlock|5", True, 0.0)
    assert event is not None
    assert event.reason == "hang-rate"


def test_successes_decay_and_prune_signature_state():
    det = _trippy_detector()
    det.observe("b", "b|crash|1", False, 0.0)
    assert det.tracked_signatures("b") == 1
    score_after_hit = det.snapshot()["b"]["b|crash|1"]["score"]
    det.observe("b", None, False, 1.0)  # a success decays...
    assert det.snapshot()["b"]["b|crash|1"]["score"] < score_after_hit
    for i in range(60):  # ...and a long quiet streak prunes to nothing
        det.observe("b", None, False, 2.0 + i)
    assert det.tracked_signatures("b") == 0


# -- liveness: heartbeat loss -> eviction -> reconnect -> re-admission ------


def _status_row(server, agent_id):
    for row in server.fleet_status()["agents"]:
        if row["agent_id"] == agent_id:
            return row
    return None


def test_silent_monitor_is_evicted_then_readmitted(custom_module):
    clock = _Clock()
    server = FleetServer(
        module_resolver=lambda bug_id: custom_module,
        workers=1,
        heartbeat_timeout_s=5.0,
        prune_interval_s=0.05,
        anomaly_detector=_inert_detector(),
        clock=clock,
    )
    host, port = server.start()
    stop = threading.Event()
    agent = FleetAgent(
        "mon-0", "custom-readbeforeinit", custom_module, _workload, host, port
    )
    try:
        agent.connect()
        loop = MonitorLoop(agent, clock=clock)
        assert "heartbeat" in loop.tick(clock.t, stop=stop)
        # the heartbeat travels the wire; poll until the server saw it
        row = None
        deadline = time.time() + 5.0
        while time.time() < deadline:
            row = _status_row(server, "mon-0")
            if row is not None and row["monitored"]:
                break
            time.sleep(0.01)
        assert row is not None and row["alive"] and row["monitored"]
        assert row["heartbeats"] >= 1

        # the endpoint goes silent for twice the timeout
        clock.t += 10.0
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if server.metrics.counter("agents_evicted_stale") >= 1:
                break
            time.sleep(0.02)
        assert server.metrics.counter("agents_evicted_stale") == 1
        assert _status_row(server, "mon-0") is None  # gone, not a zombie row
        time.sleep(0.2)  # more prune cycles: eviction counted exactly once
        assert server.metrics.counter("agents_evicted_stale") == 1

        # the agent notices the closed socket and reconnects
        events = []
        deadline = time.time() + 5.0
        while "reconnect" not in events and time.time() < deadline:
            clock.t += 0.1
            events.extend(loop.tick(clock.t, stop=stop))
        assert "reconnect" in events
        # the Hello travels the wire; poll until the server re-admits
        row = None
        deadline = time.time() + 5.0
        while row is None and time.time() < deadline:
            clock.t += 0.1
            loop.tick(clock.t, stop=stop)
            row = _status_row(server, "mon-0")
            time.sleep(0.01)
        assert row is not None and row["alive"]
    finally:
        stop.set()
        agent.close()
        server.stop()


def test_eviction_reaps_only_the_silent(custom_module):
    # regression: conns abandoned by crashed endpoints (the chaos
    # crash plan leaves the socket dangling without a Goodbye) used to
    # accumulate in _agents forever; the prune loop must reap exactly
    # the silent ones and leave the heartbeating endpoint alone
    clock = _Clock()
    server = FleetServer(
        module_resolver=lambda bug_id: custom_module,
        workers=1,
        heartbeat_timeout_s=5.0,
        prune_interval_s=0.05,
        anomaly_detector=_inert_detector(),
        clock=clock,
    )
    host, port = server.start()
    stop = threading.Event()
    silent = [
        FleetAgent(
            f"dead-{i}", "custom-readbeforeinit", custom_module, _workload,
            host, port,
        )
        for i in range(3)
    ]
    live = FleetAgent(
        "alive-0", "custom-readbeforeinit", custom_module, _workload, host, port
    )
    try:
        for agent in silent:
            agent.connect()  # Hello, then nothing: a crashed endpoint
        live.connect()
        loop = MonitorLoop(live, heartbeat_interval_s=0.5, clock=clock)
        deadline = time.time() + 10.0
        while time.time() < deadline:
            # small simulated steps: the live agent's heartbeats stay
            # well inside the timeout even if frame processing lags
            clock.t += 0.5
            loop.tick(clock.t, stop=stop)  # the live one keeps beating
            if server.metrics.counter("agents_evicted_stale") >= 3:
                break
            time.sleep(0.02)
        assert server.metrics.counter("agents_evicted_stale") == 3
        survivors = {r["agent_id"] for r in server.fleet_status()["agents"]}
        assert survivors == {"alive-0"}
    finally:
        stop.set()
        for agent in silent:
            agent.close()
        live.close()
        server.stop()


# -- anomaly-triggered diagnosis == on-demand diagnosis ---------------------


def _monitor_until_diagnosed(server, agent, clock, signature, stop):
    """Tick the monitor loop (compressed time) until the server's
    anomaly path has recorded a digest for ``signature``."""
    loop = MonitorLoop(agent, clock=clock)
    deadline = time.time() + 120.0
    while time.time() < deadline:
        clock.t += 0.5
        loop.tick(clock.t, stop=stop)
        digest = server.anomaly_digests().get(signature)
        if digest is not None:
            return digest
        time.sleep(0.002)
    raise AssertionError(f"anomaly never diagnosed {signature}")


def test_anomaly_triggered_digest_matches_on_demand(custom_module, failing_run):
    signature = signature_for_failure("custom-readbeforeinit", failing_run)
    clock = _Clock()
    server = FleetServer(
        module_resolver=lambda bug_id: custom_module,
        workers=1,
        success_traces_wanted=4,
        anomaly_detector=_trippy_detector(),
        clock=clock,
    )
    host, port = server.start()
    stop = threading.Event()
    agent = FleetAgent(
        "mon-1", "custom-readbeforeinit", custom_module, _workload, host, port
    )
    try:
        agent.connect()
        anomaly_digest = _monitor_until_diagnosed(
            server, agent, clock, signature, stop
        )
        # the equivalence contract: unprompted == asked-for
        client = SnorlaxClient(custom_module, _workload)
        in_process = SnorlaxServer(
            custom_module, success_traces_wanted=4
        ).diagnose(failing_run, client).report
        assert anomaly_digest == report_digest(in_process)
        # exactly one trigger: the window is effectively infinite
        assert server.metrics.counter("anomaly_triggers") == 1
        # the timeline tells the story in order
        events = [e["event"] for e in server.timeline()]
        assert events.count("anomaly") == 1
        assert "diagnosis" in events
        status = server.fleet_status()
        assert status["diagnosed"][signature]["anomaly_triggered"]
        # the evidence graph is queryable by the report key and whole
        key = report_key(anomaly_digest)
        graph = server.evidence_graph(key)
        assert graph is not None
        assert EvidenceGraph.from_dict(graph.to_dict()).digest() == graph.digest()
        assert graph.nodes_of_kind("report") and graph.nodes_of_kind("pt_buffer")
    finally:
        stop.set()
        agent.close()
        server.stop()


def test_store_served_evidence_identical_to_cold(
    custom_module, failing_run, tmp_path
):
    signature = signature_for_failure("custom-readbeforeinit", failing_run)
    path = str(tmp_path / "fleet.db")
    stop = threading.Event()

    # cold: a monitored fleet diagnoses the anomaly and persists evidence
    clock = _Clock()
    store = DiagnosisStore(path)
    server = FleetServer(
        module_resolver=lambda bug_id: custom_module,
        workers=1,
        success_traces_wanted=4,
        anomaly_detector=_trippy_detector(),
        clock=clock,
        store=store,
    )
    host, port = server.start()
    agent = FleetAgent(
        "mon-2", "custom-readbeforeinit", custom_module, _workload, host, port
    )
    try:
        agent.connect()
        cold_digest = _monitor_until_diagnosed(
            server, agent, clock, signature, stop
        )
        key = report_key(cold_digest)
        cold_graph = server.evidence_graph(key)
        assert cold_graph is not None
    finally:
        stop.set()
        agent.close()
        server.stop()
        store.close()

    # warm restart: same store, fresh process; the first failing sample
    # trips the detector and is served from disk — no diagnosis runs
    stop = threading.Event()
    clock = _Clock()
    store = DiagnosisStore(path)
    server = FleetServer(
        module_resolver=lambda bug_id: custom_module,
        workers=1,
        success_traces_wanted=4,
        anomaly_detector=_trippy_detector(),
        clock=clock,
        store=store,
    )
    host, port = server.start()
    agent = FleetAgent(
        "mon-3", "custom-readbeforeinit", custom_module, _workload, host, port
    )
    try:
        agent.connect()
        warm_digest = _monitor_until_diagnosed(
            server, agent, clock, signature, stop
        )
        assert warm_digest == cold_digest
        assert server.metrics.counter("diagnoses_from_store") >= 1
        assert server.metrics.counter("diagnoses_completed") == 0
        warm_graph = server.evidence_graph(report_key(warm_digest))
        assert warm_graph is not None
        assert warm_graph.digest() == cold_graph.digest()
    finally:
        stop.set()
        agent.close()
        server.stop()
        store.close()


# -- the dashboard ----------------------------------------------------------


def _get_json(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        assert resp.status == 200
        return json.loads(resp.read().decode())


def test_dashboard_serves_fleet_state(custom_module):
    server = FleetServer(
        module_resolver=lambda bug_id: custom_module,
        workers=1,
        dashboard_port=0,
    )
    server.start()
    try:
        url = server.dashboard.url
        status = _get_json(url + "api/fleet")
        assert set(status) == {"agents", "anomaly", "diagnosed"}
        assert _get_json(url + "api/timeline") == []
        with urllib.request.urlopen(url, timeout=5) as resp:
            assert b"<html" in resp.read().lower()
        with urllib.request.urlopen(url + "metrics", timeout=5) as resp:
            assert resp.status == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url + "api/evidence?report=nope", timeout=5)
        assert excinfo.value.code == 404
    finally:
        server.stop()
