"""End-to-end fleet runs over real localhost TCP sockets.

The acceptance story: ≥50 agents, ≥3 distinct corpus bugs failing
concurrently on several endpoints each, every signature diagnosed
exactly once (dedup), and each fleet-produced report equal to what the
in-process ``SnorlaxServer.diagnose`` yields for the same
module and seeds.
"""

import threading

import pytest

from repro.corpus import bug
from repro.fleet import (
    FleetAgent,
    FleetConfig,
    FleetMetrics,
    FleetServer,
    report_digest,
    run_fleet,
)
from repro.ir import parse_module
from repro.runtime import SnorlaxClient, SnorlaxServer

from tests.runtime.test_client_server import SRC, _workload

BUGS = ("pbzip2-n/a", "memcached-271", "aget-2")


# -- small custom-module fleet (module_resolver injection) ------------------


@pytest.fixture(scope="module")
def custom_module():
    return parse_module(SRC)


def test_single_agent_fleet_matches_in_process(custom_module):
    server = FleetServer(
        module_resolver=lambda bug_id: custom_module, workers=1, max_pending=2
    )
    host, port = server.start()
    stop = threading.Event()
    try:
        agent = FleetAgent(
            "solo", "custom-readbeforeinit", custom_module, _workload, host, port
        )
        agent.connect()
        result = agent.produce_and_report(stop)
        agent.close()
    finally:
        stop.set()
        server.stop()
    client = SnorlaxClient(custom_module, _workload)
    failing = client.find_runs(True, 1)[0]
    in_process = SnorlaxServer(custom_module).diagnose(failing, client).report
    assert result.signature == "custom-readbeforeinit|crash|" + str(
        failing.failure.failing_uid
    )
    assert result.digest == report_digest(in_process)
    assert result.digest["bug_kind"] == "order-violation"
    assert result.digest["f1"] == 1.0


# -- the 50-agent corpus fleet ---------------------------------------------


@pytest.fixture(scope="module")
def fleet_caches():
    from repro.core.cache import DiagnosisCaches

    return DiagnosisCaches()


@pytest.fixture(scope="module")
def fleet_run(fleet_caches):
    metrics = FleetMetrics()
    config = FleetConfig(
        agents=50, bug_ids=BUGS, reporters_per_bug=3, workers=3, max_pending=8
    )
    result = run_fleet(config, metrics=metrics, caches=fleet_caches)
    return result


@pytest.fixture(scope="module")
def in_process_digests():
    digests = {}
    for bug_id in BUGS:
        spec = bug(bug_id)
        client = SnorlaxClient(spec.module(), spec.workload, entry=spec.entry)
        failing = client.find_runs(True, 1)[0]
        report = SnorlaxServer(spec.module()).diagnose(failing, client).report
        signature = f"{bug_id}|{failing.failure.kind}|{failing.failure.failing_uid}"
        digests[signature] = report_digest(report)
    return digests


def test_fleet_runs_clean(fleet_run):
    errors = [o for o in fleet_run.outcomes if o.error]
    assert not errors, errors
    assert len(fleet_run.outcomes) == 50


def test_each_signature_diagnosed_exactly_once(fleet_run):
    # 3 reporters x 3 bugs = 9 failures, but only 3 diagnoses ran: the
    # other 6 reports were folded in by signature dedup.
    assert fleet_run.failures_received == 9
    assert fleet_run.diagnoses_completed == 3
    assert fleet_run.dedup_hits == 6
    assert len(fleet_run.digests) == 3


def test_all_reporters_of_a_bug_get_the_same_result(fleet_run):
    by_signature = {}
    for outcome in fleet_run.outcomes:
        if outcome.reporter:
            assert outcome.digest is not None
            by_signature.setdefault(outcome.signature, []).append(outcome.digest)
    assert len(by_signature) == 3
    for signature, digests in by_signature.items():
        assert len(digests) == 3
        assert all(d == digests[0] for d in digests), signature


def test_fleet_reports_equal_in_process_reports(fleet_run, in_process_digests):
    assert set(fleet_run.digests) == set(in_process_digests)
    for signature, digest in fleet_run.digests.items():
        assert digest == in_process_digests[signature], signature
        assert digest["diagnosed"]
        assert digest["f1"] == 1.0


def test_collection_fans_out_across_endpoints(fleet_run):
    # successful traces were gathered from many endpoints, not just the
    # reporting ones
    servers = [o for o in fleet_run.outcomes if o.trace_requests_served]
    assert len(servers) > 3
    total_served = sum(o.trace_requests_served for o in fleet_run.outcomes)
    assert total_served == fleet_run.metrics["counters"]["trace_requests_sent"]
    assert total_served == fleet_run.metrics["counters"]["trace_responses_received"]


def test_metrics_observed(fleet_run):
    counters = fleet_run.metrics["counters"]
    assert counters["agents_connected"] == 50
    assert counters["traces_collected"] == 30  # 10 successes x 3 diagnoses
    assert counters["jobs_submitted"] == 3
    timers = fleet_run.metrics["timers"]
    assert timers["diagnosis_latency"]["count"] == 3
    assert timers["collection_latency"]["count"] == 3
    assert timers["analysis_latency"]["count"] == 3
    assert 0 < fleet_run.median_diagnosis_latency_s < 60
    assert fleet_run.metrics["gauges"]["queue_depth"] == 0
    assert fleet_run.failures_per_sec > 0


def test_recurring_failures_reuse_collected_evidence(fleet_run, fleet_caches):
    # the production steady state: the same bugs fail again tomorrow.
    # With warm caches the fleet replays the memoized evidence — zero
    # remote executions — and still produces byte-identical digests.
    config = FleetConfig(
        agents=12, bug_ids=BUGS, reporters_per_bug=1, workers=3
    )
    again = run_fleet(config, metrics=FleetMetrics(), caches=fleet_caches)
    assert again.digests == fleet_run.digests
    counters = again.metrics["counters"]
    assert counters.get("evidence_cache_hits", 0) == len(BUGS)
    assert counters.get("trace_requests_sent", 0) == 0
    assert counters.get("trace_batches_sent", 0) == 0
