"""Chaos acceptance: the fleet diagnoses correctly through injected
faults, and degrades gracefully (flagged, never wrong) when evidence is
scarce.

The tentpole property: trace collection is deterministic in
(seed, breakpoints, skip), so a fleet run under frame corruption,
dropped responses, and agent crashes must still produce digests
byte-identical to the fault-free in-process diagnosis.
"""

import threading

import pytest

from repro.corpus import bug
from repro.fleet import (
    FaultPlan,
    FleetAgent,
    FleetConfig,
    FleetMetrics,
    FleetServer,
    report_digest,
    run_fleet,
)
from repro.ir import parse_module
from repro.runtime import SnorlaxClient, SnorlaxServer

from tests.runtime.test_client_server import SRC, _workload

BUGS = ("pbzip2-n/a", "aget-2")


# -- FaultPlan determinism --------------------------------------------------


class _SinkSocket:
    """Collects whatever the fault engine lets through."""

    def __init__(self):
        self.sent = []
        self.closed = False

    def sendall(self, data):
        self.sent.append(bytes(data))

    def close(self):
        self.closed = True


def _drive(engine, frames):
    """Feed frames through an engine; returns (survived bytes, counts)."""
    sink = _SinkSocket()
    for frame in frames:
        try:
            engine.send_frame(sink, frame)
        except ConnectionError:
            sink = _SinkSocket()  # reconnect: a fresh socket, same engine
    return sink.sent, dict(engine.counts)


def test_fault_stream_is_deterministic_per_endpoint():
    from repro.fleet.wire import encode_frame
    from repro.runtime.protocol import TraceResponse

    plan = FaultPlan(
        seed=42, corrupt_rate=0.3, drop_rate=0.2, truncate_rate=0.1,
        crash_rate=0.2, max_crashes_per_agent=2,
    )
    frames = [
        encode_frame(TraceResponse(label=f"s-{i}", outcome="success", sample=None), i)
        for i in range(50)
    ]
    sent_a, counts_a = _drive(plan.engine("agent-007"), frames)
    sent_b, counts_b = _drive(plan.engine("agent-007"), frames)
    assert sent_a == sent_b  # identical mangling, byte for byte
    assert counts_a == counts_b
    assert sum(counts_a.values()) > 0  # the plan actually did something
    # a different endpoint gets a different (but equally deterministic) stream
    sent_c, _ = _drive(plan.engine("agent-008"), frames)
    assert sent_c != sent_a


def test_inactive_plan_wraps_nothing():
    assert not FaultPlan().active
    assert not FaultPlan().wraps_sockets
    assert FaultPlan(server_restart_after_s=1.0).active
    assert not FaultPlan(server_restart_after_s=1.0).wraps_sockets
    assert FaultPlan(corrupt_rate=0.1).wraps_sockets


# -- the chaos fleet: ≥20 agents, corruption + drops + crashes --------------


@pytest.fixture(scope="module")
def chaos_run():
    plan = FaultPlan(
        seed=7,
        corrupt_rate=0.05,
        drop_rate=0.05,
        truncate_rate=0.02,
        crash_rate=0.9,  # nearly every endpoint dies on its first answer
        max_crashes_per_agent=1,
    )
    config = FleetConfig(
        agents=20,
        bug_ids=BUGS,
        reporters_per_bug=2,
        workers=2,
        chaos=plan,
        trace_reply_timeout=2.0,
        frame_timeout=5.0,
    )
    return run_fleet(config, metrics=FleetMetrics())


@pytest.fixture(scope="module")
def in_process_digests():
    digests = {}
    for bug_id in BUGS:
        spec = bug(bug_id)
        client = SnorlaxClient(spec.module(), spec.workload, entry=spec.entry)
        failing = client.find_runs(True, 1)[0]
        report = SnorlaxServer(spec.module()).diagnose(failing, client).report
        signature = f"{bug_id}|{failing.failure.kind}|{failing.failure.failing_uid}"
        digests[signature] = report_digest(report)
    return digests


def test_chaos_fleet_completes_every_diagnosis(chaos_run):
    errors = [o for o in chaos_run.outcomes if o.error]
    assert not errors, errors
    for outcome in chaos_run.outcomes:
        if outcome.reporter:
            assert outcome.digest is not None, outcome.agent_id
    assert len(chaos_run.digests) == len(BUGS)


def test_chaos_faults_actually_landed(chaos_run):
    crashed = [
        o for o in chaos_run.outcomes if o.faults_injected.get("crashes")
    ]
    assert len(crashed) >= 5  # >= 25% of the 20-agent fleet died mid-answer
    assert chaos_run.faults_injected > 0
    counters = chaos_run.metrics["counters"]
    # the injected damage surfaced through the resilience machinery,
    # not as agent errors
    recovered = (
        counters.get("trace_request_timeouts", 0)
        + counters.get("trace_request_reroutes", 0)
        + chaos_run.reconnects
    )
    assert recovered > 0


def test_chaos_digests_equal_fault_free_in_process(chaos_run, in_process_digests):
    # the acceptance bar: every non-degraded report is byte-identical to
    # the diagnosis a fault-free in-process server produces
    assert set(chaos_run.digests) == set(in_process_digests)
    for signature, digest in chaos_run.digests.items():
        assert not digest["degraded"], signature
        assert digest == in_process_digests[signature], signature
        assert digest["f1"] == 1.0


def test_chaos_fleet_used_batched_collection(chaos_run):
    # the chaos fixture runs with the batched default, so the digest
    # equality above is evidence equivalence *through batch frames*
    # under corruption, drops, and crashes — not just the unit path
    counters = chaos_run.metrics["counters"]
    assert counters.get("trace_batches_sent", 0) > 0
    assert counters.get("trace_requests_sent", 0) >= counters["trace_batches_sent"]


def test_batched_collection_survives_drop_and_delay(in_process_digests):
    # drop/delay aimed at batch frames: a swallowed TraceBatchResponse
    # re-stripes the whole chunk, and the evidence must still come out
    # byte-identical to the fault-free in-process diagnosis
    plan = FaultPlan(
        seed=11,
        drop_rate=0.08,
        delay_rate=0.15,
        max_delay_s=0.02,
    )
    config = FleetConfig(
        agents=10,
        bug_ids=("pbzip2-n/a",),
        reporters_per_bug=1,
        workers=2,
        chaos=plan,
        trace_reply_timeout=2.0,
        frame_timeout=5.0,
    )
    result = run_fleet(config, metrics=FleetMetrics())
    assert not [o for o in result.outcomes if o.error]
    counters = result.metrics["counters"]
    assert counters.get("trace_batches_sent", 0) > 0
    for signature, digest in result.digests.items():
        assert not digest["degraded"], signature
        assert digest == in_process_digests[signature], signature


def test_unbatched_fleet_matches_in_process_digests(in_process_digests):
    # regression for the per-request transport: disabling batching must
    # not change a byte of any digest
    config = FleetConfig(
        agents=8,
        bug_ids=("aget-2",),
        reporters_per_bug=1,
        workers=2,
        collection_batching=False,
    )
    result = run_fleet(config, metrics=FleetMetrics())
    assert not [o for o in result.outcomes if o.error]
    assert result.metrics["counters"].get("trace_batches_sent", 0) == 0
    for signature, digest in result.digests.items():
        assert digest == in_process_digests[signature], signature


# -- validation under chaos -------------------------------------------------


def test_sharded_chaos_fleet_validation_matches_in_process():
    # the close-the-loop acceptance bar: a 2-shard fleet validating
    # through the standard chaos plan must stamp every report
    # `validated` with witness schedules byte-identical to a fault-free
    # in-process validation — the directed replays are deterministic in
    # (module, seed, directive, quantum), transport included
    from repro.validate import validate_report

    plan = FaultPlan(
        seed=7,
        corrupt_rate=0.05,
        drop_rate=0.05,
        truncate_rate=0.02,
        crash_rate=0.9,
        max_crashes_per_agent=1,
    )
    config = FleetConfig(
        agents=12,
        bug_ids=BUGS,
        reporters_per_bug=2,
        workers=2,
        shards=2,
        validate=True,
        chaos=plan,
        trace_reply_timeout=2.0,
        frame_timeout=5.0,
    )
    metrics = FleetMetrics()
    result = run_fleet(config, metrics=metrics)
    assert not [o for o in result.outcomes if o.error]
    assert len(result.digests) == len(BUGS)

    expected = {}
    for bug_id in BUGS:
        spec = bug(bug_id)
        module = spec.module()
        client = SnorlaxClient(module, spec.workload, entry=spec.entry)
        failing = client.find_runs(True, 1)[0]
        report = SnorlaxServer(module).diagnose(failing, client).report
        validate_report(
            module, spec.workload, report,
            entry=spec.entry, failing_seed=failing.seed,
        )
        signature = (
            f"{bug_id}|{failing.failure.kind}|{failing.failure.failing_uid}"
        )
        expected[signature] = report_digest(report)

    assert set(result.digests) == set(expected)
    for signature, digest in result.digests.items():
        assert digest["validation"]["status"] == "validated", signature
        assert digest == expected[signature], signature


# -- graceful degradation ---------------------------------------------------


@pytest.fixture(scope="module")
def custom_module():
    return parse_module(SRC)


def test_degraded_collection_is_flagged_not_failed(custom_module):
    # one endpoint, 25 traces wanted, a deadline far too short: the
    # diagnosis must run with what arrived and say so
    metrics = FleetMetrics()
    server = FleetServer(
        module_resolver=lambda bug_id: custom_module,
        workers=1,
        success_traces_wanted=25,
        collection_deadline_s=0.05,
        min_success_traces=1,
        metrics=metrics,
    )
    host, port = server.start()
    stop = threading.Event()
    try:
        agent = FleetAgent(
            "solo", "custom-readbeforeinit", custom_module, _workload, host, port
        )
        agent.connect()
        result = agent.produce_and_report(stop)
        agent.close()
    finally:
        stop.set()
        server.stop()
    assert result.digest["degraded"] is True
    assert metrics.counter("degraded_collections") == 1
    assert any("degraded collection" in n for n in result.digest["notes"])
    # degraded evidence still yields a diagnosis, just from fewer traces
    assert result.digest["diagnosed"]


def test_fault_free_fleet_digest_is_not_degraded(custom_module):
    metrics = FleetMetrics()
    server = FleetServer(
        module_resolver=lambda bug_id: custom_module, workers=1, metrics=metrics
    )
    host, port = server.start()
    stop = threading.Event()
    try:
        agent = FleetAgent(
            "solo", "custom-readbeforeinit", custom_module, _workload, host, port
        )
        agent.connect()
        result = agent.produce_and_report(stop)
        agent.close()
    finally:
        stop.set()
        server.stop()
    assert result.digest["degraded"] is False
    assert metrics.counter("degraded_collections") == 0
