"""Generator determinism and artifact well-formedness."""

import random

from repro.check import generator


def _params():
    return {
        "threads": 3, "events": 8, "uids": 4, "desync_pct": 30,
        "zero_width_pct": 10, "observations": 6, "failing": 2, "sigs": 4,
        "max_rank": 4, "dynamics_pct": 50, "vars": 8, "objs": 4,
        "copies": 6, "loads": 4, "stores": 4, "kloc": 1, "quantum": 400,
        "iters": 4, "cold": 0,
    }


def test_gen_bug_is_deterministic():
    a = generator.gen_bug(random.Random(7), _params())
    b = generator.gen_bug(random.Random(7), _params())
    ma, truth_a, _wl_a, kind_a = a
    mb, truth_b, _wl_b, kind_b = b
    assert kind_a == kind_b
    assert truth_a.resolve(ma) == truth_b.resolve(mb)
    assert sorted(ma.functions) == sorted(mb.functions)


def test_gen_bug_builds_every_template_kind():
    # every vocabulary draw must compose with every template (no field
    # collisions like the reserved "len" on the RWW struct)
    for kind in generator._KINDS:
        for seed in range(5):
            module, truth, workload, built = generator.gen_bug(
                random.Random(seed), _params(), kinds=(kind,)
            )
            assert built == kind
            assert truth.resolve(module)
            assert isinstance(workload(0), tuple)


def test_gen_thread_traces_shape():
    rng = random.Random(3)
    traces = generator.gen_thread_traces(rng, _params())
    assert len(traces) == 3
    for tid, tt in traces.items():
        assert tt.tid == tid
        # per-thread seq order and monotone t_lo, like the decoder
        seqs = [d.seq for d in tt.instructions]
        assert seqs == sorted(seqs)
        los = [d.t_lo for d in tt.instructions]
        assert los == sorted(los)
        assert all(d.t_lo <= d.t_hi for d in tt.instructions)


def test_gen_observations_are_reproducible():
    a = generator.gen_observations(random.Random(11), _params())
    b = generator.gen_observations(random.Random(11), _params())
    assert [(o.label, o.failing, sorted(map(str, o.signatures)))
            for o in a] == \
           [(o.label, o.failing, sorted(map(str, o.signatures)))
            for o in b]
    assert sum(o.failing for o in a) == 2


def test_gen_constraint_system_is_reproducible():
    a = generator.gen_constraint_system(random.Random(5), _params())
    b = generator.gen_constraint_system(random.Random(5), _params())
    assert a.copies == b.copies
    assert a.loads == b.loads
    assert a.stores == b.stores
    assert sorted(a.objects) == sorted(b.objects)
