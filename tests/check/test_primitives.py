"""The primitives filter and the sim stage: bitmask codec, kind
selection, table fuzzing, and the CLI/runner plumbing."""

import pytest

from repro.check.cases import CheckCase
from repro.check.generator import (
    PRIMITIVE_BITS,
    kinds_for_primitives,
    primitive_names,
    primitives_mask,
)
from repro.check.runner import run_check
from repro.check.stages import STAGES, run_sim


def test_mask_roundtrip():
    for name, bit in PRIMITIVE_BITS.items():
        assert primitives_mask([name]) == bit
        assert primitive_names(bit) == (name,)
    everything = primitives_mask(PRIMITIVE_BITS)
    assert primitive_names(everything) == tuple(PRIMITIVE_BITS)
    assert primitive_names(0) == tuple(PRIMITIVE_BITS)  # 0 = no filter


def test_mask_rejects_unknown_primitive():
    with pytest.raises(ValueError, match="spinlock"):
        primitives_mask(["condvar", "spinlock"])


def test_kinds_for_primitives():
    # no filter: the classic corpus patterns, untouched
    assert kinds_for_primitives(0) == (
        "WR", "RW", "WW", "RWR", "WWR", "RWW", "WRW", "deadlock",
    )
    assert kinds_for_primitives(primitives_mask(["condvar"])) == (
        "lost-wakeup",
    )
    assert kinds_for_primitives(primitives_mask(["mutex"])) == (
        "deadlock", "lock-chain",
    )
    ci_mask = primitives_mask(["condvar", "rwlock", "sema", "barrier"])
    assert kinds_for_primitives(ci_mask) == (
        "lost-wakeup", "rw-race", "sema-underflow", "barrier-phase",
    )


@pytest.mark.parametrize("primitive", sorted(PRIMITIVE_BITS))
def test_sim_stage_fuzzes_each_table(primitive):
    defaults = dict(STAGES["sim"].defaults)
    defaults["primitives"] = primitives_mask([primitive])
    for seed in range(30):
        run_sim(CheckCase("sim", seed, defaults))


def test_sim_stage_catches_a_broken_queue(monkeypatch):
    # sabotage the condvar queue (LIFO wakeup) and the fuzzer must
    # object — proof the reference models actually bite
    from repro.check.invariants import InvariantViolation
    from repro.sim import sync

    def lifo_notify(self, address):
        queue = self._waiters.get(address)
        if not queue:
            return None
        return queue.pop()  # newest waiter instead of the oldest

    monkeypatch.setattr(sync.CondTable, "notify", lifo_notify)
    defaults = dict(STAGES["sim"].defaults)
    defaults["primitives"] = primitives_mask(["condvar"])
    with pytest.raises(InvariantViolation):
        for seed in range(30):
            run_sim(CheckCase("sim", seed, defaults))


def test_runner_applies_overrides_to_declaring_stages_only(tmp_path):
    seen = {}
    real_run = STAGES["sim"].run

    def spy(case):
        seen.update(case.params)
        return real_run(case)

    object.__setattr__(STAGES["sim"], "run", spy)
    try:
        stats = run_check(
            cases=6, seed=4, stages=["sim"], out_dir=tmp_path,
            overrides={"primitives": primitives_mask(["sema"]),
                       "not_a_knob": 99},
        )
    finally:
        object.__setattr__(STAGES["sim"], "run", real_run)
    assert stats.ok
    assert seen["primitives"] == primitives_mask(["sema"])
    assert "not_a_knob" not in seen  # undeclared knobs never leak in


def test_cli_primitives_flag(tmp_path, capsys):
    from repro.check.__main__ import main

    rc = main([
        "--cases", "6", "--seed", "5", "--stages", "sim",
        "--primitives", "condvar,barrier", "--out", str(tmp_path),
    ])
    assert rc == 0
    assert "checked 6 cases" in capsys.readouterr().out
    with pytest.raises(SystemExit) as exc:
        main(["--primitives", "futex"])
    assert exc.value.code == 2
