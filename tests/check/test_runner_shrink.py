"""Runner determinism, the shrinking reducer, reproducers, and the CLI."""

import json

import pytest

from repro.check.cases import CheckCase
from repro.check.runner import run_check
from repro.check.shrink import shrink_case, write_reproducer
from repro.check.stages import STAGES
from repro.obs import Observability


def test_run_check_fast_stages_all_pass(tmp_path):
    stats = run_check(
        cases=40, seed=1, stages=["trace", "stats", "pointsto"],
        out_dir=tmp_path,
    )
    assert stats.ok
    assert stats.cases == 40
    assert stats.passed + stats.skipped == 40
    assert not list(tmp_path.glob("*.json"))


def test_run_check_is_deterministic(tmp_path):
    kw = dict(cases=25, seed=9, stages=["trace", "stats"], out_dir=tmp_path)
    a, b = run_check(**kw), run_check(**kw)
    assert a.by_stage == b.by_stage
    assert (a.passed, a.failed, a.skipped) == (b.passed, b.failed, b.skipped)


def test_run_check_exports_counters(tmp_path):
    obs = Observability()
    stats = run_check(
        cases=10, seed=2, stages=["stats"], out_dir=tmp_path, obs=obs,
    )
    assert obs.registry.counter("check_cases") == stats.cases == 10
    assert obs.registry.counter("check_stage_stats_cases") == 10


def test_shrink_finds_the_minimal_failing_knob():
    def run(case):
        if case.params["x"] >= 3:
            raise AssertionError(f"x={case.params['x']} too big")

    case = CheckCase("trace", 0, {"x": 9, "y": 5})
    shrunk, error = shrink_case(case, run, minimums={"x": 1, "y": 1})
    assert shrunk.params["x"] == 3  # the exact boundary
    assert shrunk.params["y"] == 1  # irrelevant knob at its floor
    assert "too big" in str(error)


def test_shrink_refuses_passing_case():
    with pytest.raises(ValueError):
        shrink_case(CheckCase("trace", 0, {"x": 1}), lambda case: None)


def test_reproducer_roundtrip(tmp_path):
    case = CheckCase("stats", 42, {"observations": 3, "sigs": 2})
    path = write_reproducer(tmp_path, case, AssertionError("boom"))
    payload = json.loads(path.read_text())
    assert payload["stage"] == "stats"
    assert payload["seed"] == 42
    assert "boom" in payload["error"]
    assert "--replay" in payload["replay"]
    loaded = CheckCase.from_json(path.read_text())
    assert loaded == case


def test_stage_registry_knobs_are_integers():
    # the shrinker minimizes by integer descent, so every default and
    # floor must be an int
    for spec in STAGES.values():
        assert all(isinstance(v, int) for v in spec.defaults.values())
        assert all(isinstance(v, int) for v in spec.minimums.values())
        assert set(spec.minimums) <= set(spec.defaults)


def test_cli_smoke(tmp_path, capsys):
    from repro.check.__main__ import main

    assert main(["--list-stages"]) == 0
    rc = main([
        "--cases", "8", "--seed", "3", "--stages", "trace,stats",
        "--out", str(tmp_path),
        "--metrics-out", str(tmp_path / "metrics.txt"),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "checked 8 cases" in out
    assert "check_cases" in (tmp_path / "metrics.txt").read_text()


def test_cli_rejects_unknown_stage():
    from repro.check.__main__ import main

    with pytest.raises(SystemExit) as exc:
        main(["--stages", "nope"])
    assert exc.value.code == 2
