"""The oracles must accept good artifacts and reject crafted-bad ones."""

import random

import pytest

from repro.check import generator, invariants
from repro.check.invariants import InvariantViolation
from repro.core.andersen import solve
from repro.core.statistics import score_patterns
from repro.core.trace_processing import process_snapshot
from repro.pt.decoder import DynamicInstruction


def _params():
    return {
        "threads": 3, "events": 10, "uids": 5, "desync_pct": 20,
        "zero_width_pct": 10, "observations": 6, "failing": 2, "sigs": 4,
        "max_rank": 4, "dynamics_pct": 50, "vars": 10, "objs": 5,
        "copies": 8, "loads": 5, "stores": 5,
    }


# -- processed-trace oracle --------------------------------------------------


def test_good_processed_trace_passes():
    rng = random.Random(1)
    traces = generator.gen_thread_traces(rng, _params())
    pt = process_snapshot("t", traces, failing=True)
    invariants.check_processed_trace(pt, traces, rng=rng)


def test_unsorted_uid_bucket_is_rejected():
    rng = random.Random(2)
    traces = generator.gen_thread_traces(rng, _params())
    pt = process_snapshot("t", traces, failing=True)
    # corrupt: append out of (t_lo, seq) order, the pre-fix anchor bug
    uid = next(iter(pt.by_uid))
    early = DynamicInstruction(uid, 77, 0, 0, 0)
    pt.dynamic.append(early)
    pt.threads.add(77)
    pt.executed_uids.add(uid)
    pt.by_uid[uid].append(early)
    with pytest.raises(InvariantViolation) as exc:
        invariants.check_processed_trace(pt, traces, rng=rng)
    assert "by-uid" in exc.value.invariant


def test_unregistered_thread_is_rejected():
    rng = random.Random(3)
    traces = generator.gen_thread_traces(rng, _params())
    pt = process_snapshot("t", traces, failing=True)
    uid = next(iter(pt.by_uid))
    ghost = DynamicInstruction(uid, 88, 0, 10, 10)
    pt.dynamic.append(ghost)
    pt.by_uid[uid].append(ghost)
    pt.by_uid[uid].sort(key=lambda d: (d.t_lo, d.seq))
    with pytest.raises(InvariantViolation):
        invariants.check_processed_trace(pt, traces, rng=rng)


# -- partial-order oracle ----------------------------------------------------


def test_antisymmetry_violation_is_rejected():
    # a crafted pair ordered both ways (overlapping but before() lies)
    class Lying(DynamicInstruction):
        def before(self, other):
            return True

    a = Lying(1, 1, 0, 100, 200)
    b = Lying(2, 2, 0, 100, 200)
    with pytest.raises(InvariantViolation):
        invariants.check_partial_order([a, b], random.Random(0))


# -- score oracle ------------------------------------------------------------


def test_good_scores_pass():
    rng = random.Random(4)
    observations = generator.gen_observations(rng, _params())
    scored = score_patterns(observations)
    invariants.check_scores(observations, scored)


def test_tampered_f1_is_rejected():
    rng = random.Random(5)
    observations = generator.gen_observations(rng, _params())
    scored = score_patterns(observations)
    assert scored
    scored[0].f1 = 0.123456
    with pytest.raises(InvariantViolation):
        invariants.check_scores(observations, scored)


def test_dropped_signature_is_rejected():
    rng = random.Random(6)
    observations = generator.gen_observations(rng, _params())
    scored = score_patterns(observations)
    assert scored
    with pytest.raises(InvariantViolation):
        invariants.check_scores(observations, scored[1:])


# -- solver oracles ----------------------------------------------------------


def test_correct_solver_result_passes():
    system = generator.gen_constraint_system(random.Random(7), _params())
    result = solve(system)
    invariants.check_andersen_equivalence(system, result)
    invariants.check_steensgaard_superset(system, result)


def test_tampered_points_to_set_is_rejected():
    system = generator.gen_constraint_system(random.Random(8), _params())
    result = solve(system)
    # remove one object from one non-empty points-to set
    for node, objs in result._pts.items():
        if objs:
            objs.pop()
            break
    with pytest.raises(InvariantViolation):
        invariants.check_andersen_equivalence(system, result)
