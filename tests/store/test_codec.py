"""The rebindable codec and write-through adapters, end to end.

IR values compare by identity, so a pickled fixpoint is useless against
the live module — the codec must *rebind* stored points-to sets onto
the module a fresh process parsed.  These tests drive the real
pipeline through store-backed caches and assert the part that matters:
a second process (simulated by fresh adapter LRUs over a reopened
store) reproduces the baseline digest without re-solving or
re-decoding anything.
"""

import pytest

from repro import api
from repro.core.cache import AnalysisCache
from repro.core.points_to import PointsToAnalysis
from repro.fleet.server import report_digest
from repro.ir import parse_module
from repro.runtime import SnorlaxClient, SnorlaxServer
from repro.store import (
    DiagnosisStore,
    decode_analysis,
    encode_analysis,
    persistent_caches,
)

from tests.runtime.test_client_server import SRC, _workload


@pytest.fixture(scope="module")
def evidence():
    module = parse_module(SRC)
    client = SnorlaxClient(module, _workload)
    failing = client.find_runs(True, 1)[0]
    server = SnorlaxServer(module, success_traces_wanted=4)
    failing_sample = server.sample_from_run("failure", failing)
    successes = server.collect_successful_traces(
        client, failing.failure.failing_uid, start_seed=10_000
    )
    return module, [failing_sample, *successes]


def test_fixpoint_rebinds_onto_a_live_module(evidence):
    module, samples = evidence
    # solve once, encode, then rebind and compare query-for-query
    solved = PointsToAnalysis(module, executed_uids=None).run()
    blob = encode_analysis(solved.system, solved.result)
    assert blob is not None
    decoded = decode_analysis(blob, module, None, "andersen")
    assert decoded is not None
    for value in decoded.system.addr_of:
        assert decoded.result.points_to(value) == solved.result.points_to(value)


def test_naive_pickle_would_answer_empty_but_codec_does_not(evidence):
    # the failure mode the codec exists for: non-empty fixpoint, queried
    # with live values, must not silently come back empty
    module, _ = evidence
    solved = PointsToAnalysis(module, executed_uids=None).run()
    live_queries = [v for v in solved.system.addr_of]
    assert live_queries
    blob = encode_analysis(solved.system, solved.result)
    decoded = decode_analysis(blob, module, None, "andersen")
    assert any(decoded.result.points_to(v) for v in live_queries)


def test_corrupt_or_alien_payloads_decode_as_miss(evidence):
    module, _ = evidence
    assert decode_analysis(b"not a pickle", module, None, "andersen") is None
    assert decode_analysis(b"", module, None, "andersen") is None


def test_non_andersen_results_are_not_persisted(evidence):
    module, _ = evidence
    steensgaard = PointsToAnalysis(module, algorithm="steensgaard").run()
    assert encode_analysis(steensgaard.system, steensgaard.result) is None


def test_store_backed_diagnosis_matches_baseline_across_handles(
    evidence, tmp_path
):
    module, samples = evidence
    baseline = report_digest(api.diagnose(module, traces=samples).report)
    path = str(tmp_path / "codec.db")

    with DiagnosisStore(path) as db:
        first = api.diagnose(module, traces=samples, caches=persistent_caches(db))
        assert report_digest(first.report) == baseline
        assert db.analysis_stats.writes >= 1
        assert db.trace_stats.writes >= 1

    # a fresh handle + fresh LRUs: everything must hydrate from disk
    with DiagnosisStore(path) as db:
        second = api.diagnose(module, traces=samples, caches=persistent_caches(db))
        assert report_digest(second.report) == baseline
        assert db.analysis_stats.hits >= 1
        assert db.trace_stats.hits >= 1
        assert db.analysis_stats.writes == 0  # nothing re-solved
        assert db.trace_stats.writes == 0  # nothing re-decoded


def test_plain_cache_protocol_still_works(evidence):
    # PointsToAnalysis falls back to key-only get() for caches without
    # the get_for_module hook — the pre-store protocol must not regress
    module, _ = evidence
    cache = AnalysisCache()
    assert not hasattr(cache, "get_for_module")
    first = PointsToAnalysis(module, cache=cache).run()
    again = PointsToAnalysis(module, cache=cache).run()
    assert again.stats.extra["cache"] == "hit"
    assert again.result is first.result
