"""DiagnosisStore: schema versioning, the three tiers, counters."""

import sqlite3

import pytest

from repro.errors import FleetError
from repro.obs import MetricsRegistry
from repro.store import SCHEMA_VERSION, DiagnosisStore, scope_key
from repro.store.store import _DDL_V1

DIGEST = {"bug_kind": "order-violation", "failing_uid": 7, "diagnosed": True}


def test_fresh_store_is_at_current_schema(tmp_path):
    with DiagnosisStore(str(tmp_path / "s.db")) as db:
        assert db.schema_version == SCHEMA_VERSION
        assert db.counts() == {
            "reports": 0, "analyses": 0, "traces": 0,
            "evidence_nodes": 0, "evidence_edges": 0,
        }


def test_v1_file_migrates_forward(tmp_path):
    path = str(tmp_path / "old.db")
    conn = sqlite3.connect(path)
    with conn:
        for ddl in _DDL_V1:
            conn.execute(ddl)
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', '1')"
        )
        # a v1 row (no flight_recorder column yet)
        conn.execute(
            "INSERT INTO reports (signature, bug_id, digest, degraded, "
            "created_at) VALUES ('b|crash|1', 'b', '{}', 0, 0.0)"
        )
    conn.close()
    with DiagnosisStore(path) as db:
        assert db.schema_version == SCHEMA_VERSION
        # the migrated column exists and reads back as NULL for old rows
        report = db.get_report("b|crash|1")
        assert report is not None
        assert report.flight_recorder is None
        # and new rows can populate it
        assert db.put_report("b|crash|2", "b", DIGEST, flight_recorder="fr")
        assert db.get_report("b|crash|2").flight_recorder == "fr"


def test_v2_file_migrates_to_v3_with_validation_column(tmp_path):
    from repro.store.store import _MIGRATIONS

    path = str(tmp_path / "v2.db")
    conn = sqlite3.connect(path)
    with conn:
        for ddl in _DDL_V1:
            conn.execute(ddl)
        for statement in _MIGRATIONS[1]:  # bring the file to v2 exactly
            conn.execute(statement)
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', '2')"
        )
        # a v2 row (no validation column yet)
        conn.execute(
            "INSERT INTO reports (signature, bug_id, digest, degraded, "
            "created_at) VALUES ('b|crash|1', 'b', '{}', 0, 0.0)"
        )
    conn.close()
    with DiagnosisStore(path) as db:
        assert db.schema_version == SCHEMA_VERSION
        old = db.get_report("b|crash|1")
        assert old is not None
        assert old.validation is None  # old rows read back as NULL
        validation = {"status": "validated", "witnesses": [], "notes": []}
        assert db.put_report("b|crash|2", "b", DIGEST, validation=validation)
        assert db.get_report("b|crash|2").validation == validation


def test_validation_roundtrips_and_defaults_to_none():
    with DiagnosisStore() as db:
        validation = {
            "status": "refuted",
            "witnesses": [{"mode": "forced", "seed": 7}],
            "notes": ["forced order did not reproduce the failure"],
        }
        assert db.put_report("sig", "bug", DIGEST, validation=validation)
        assert db.get_report("sig").validation == validation
        assert db.put_report("bare", "bug", DIGEST)
        assert db.get_report("bare").validation is None


def test_future_schema_is_refused(tmp_path):
    path = str(tmp_path / "future.db")
    with DiagnosisStore(path):
        pass
    conn = sqlite3.connect(path)
    with conn:
        conn.execute(
            "UPDATE meta SET value=? WHERE key='schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
    conn.close()
    with pytest.raises(FleetError):
        DiagnosisStore(path)


def test_report_roundtrip_and_idempotent_writes():
    with DiagnosisStore() as db:
        assert db.get_report("sig") is None  # counted as a miss
        assert db.put_report("sig", "bug", DIGEST) is True
        assert db.put_report("sig", "bug", {"other": 1}) is False  # first wins
        report = db.get_report("sig")
        assert report.digest == DIGEST
        assert report.bug_id == "bug"
        assert not report.degraded
        assert db.report_stats.hits == 1
        assert db.report_stats.misses == 1
        assert db.report_stats.writes == 1  # the duplicate did not count
        assert db.signatures() == ["sig"]


def test_degraded_reports_are_never_stored():
    with DiagnosisStore() as db:
        assert db.put_report("sig", "bug", DIGEST, degraded=True) is False
        assert db.get_report("sig") is None
        assert db.counts()["reports"] == 0


def test_analysis_and_trace_tiers_roundtrip():
    with DiagnosisStore() as db:
        assert db.get_analysis("fp", "whole", "andersen") is None
        assert db.put_analysis("fp", "whole", "andersen", b"payload")
        assert not db.put_analysis("fp", "whole", "andersen", b"other")
        assert db.get_analysis("fp", "whole", "andersen") == b"payload"

        assert db.get_trace("fp", 1, "abcd", 500) is None
        assert db.put_trace("fp", 1, "abcd", 500, b"trace")
        assert db.get_trace("fp", 1, "abcd", 500) == b"trace"
        assert db.get_trace("fp", 2, "abcd", 500) is None  # tid keys

        assert db.analysis_stats.writes == 1
        assert db.trace_stats.writes == 1
        assert db.counts() == {
            "reports": 0, "analyses": 1, "traces": 1,
            "evidence_nodes": 0, "evidence_edges": 0,
        }


def test_aggregate_stats_and_absorb_vocabulary():
    with DiagnosisStore() as db:
        db.put_report("sig", "bug", DIGEST)
        db.get_report("sig")
        db.get_analysis("fp", "whole", "andersen")  # miss
        registry = MetricsRegistry()
        db.absorb_into(registry)
        assert registry.counter("store_hits") == 1
        assert registry.counter("store_misses") == 1
        assert registry.counter("store_writes") == 1
        assert registry.counter("report_store_hits") == 1
        assert registry.counter("analysis_store_misses") == 1
        # absorb sets totals: re-absorbing is idempotent
        db.absorb_into(registry)
        assert registry.counter("store_writes") == 1


def test_rows_survive_reopen(tmp_path):
    path = str(tmp_path / "persist.db")
    with DiagnosisStore(path) as db:
        db.put_report("sig", "bug", DIGEST)
        db.put_analysis("fp", "whole", "andersen", b"a")
        db.put_trace("fp", 1, "hash", 500, b"t")
    with DiagnosisStore(path) as db:
        assert db.counts() == {
            "reports": 1, "analyses": 1, "traces": 1,
            "evidence_nodes": 0, "evidence_edges": 0,
        }
        assert db.get_report("sig").digest == DIGEST


def test_scope_key_is_order_free_and_marks_whole_program():
    assert scope_key(None) == "whole"
    assert scope_key({3, 1, 2}) == scope_key([2, 3, 1])
    assert scope_key({1}) != scope_key({2})


# -- evidence tier (schema v4) ---------------------------------------------


class _Sample:
    """Just enough of a TraceSample for build_evidence_graph."""

    def __init__(self, label, failing, buffers):
        self.label = label
        self.failing = failing
        self.buffers = buffers


def _graph():
    from repro.provenance import build_evidence_graph

    digest = {
        "bug_kind": "order-violation",
        "failing_uid": 7,
        "diagnosed": True,
        "ranked_patterns": ["W10 -> R12"],
        "stage_funnel": {"alias_candidates": 4, "rank1_candidates": 1},
    }
    return build_evidence_graph(
        digest,
        [_Sample("failure", True, {1: b"\x01\x02", 2: b"\x03"})],
        [_Sample("success-0", False, {1: b"\x01\x02"})],
    )


def test_evidence_roundtrip_preserves_graph_digest():
    graph = _graph()
    with DiagnosisStore() as db:
        assert db.put_evidence(graph) is True
        assert db.put_evidence(graph) is False  # content-keyed: no new rows
        served = db.evidence_for(graph.report_key)
        assert served is not None
        assert served.digest() == graph.digest()
        assert {n.digest for n in served.nodes} == {
            n.digest for n in graph.nodes
        }
        assert db.evidence_for("no-such-key") is None
        counts = db.counts()
        assert counts["evidence_nodes"] == len(graph.nodes)
        assert counts["evidence_edges"] == len(graph.edges)


def test_evidence_survives_reopen(tmp_path):
    path = str(tmp_path / "evidence.db")
    graph = _graph()
    with DiagnosisStore(path) as db:
        db.put_evidence(graph)
    with DiagnosisStore(path) as db:
        served = db.evidence_for(graph.report_key)
        assert served is not None
        assert served.digest() == graph.digest()


def test_evidence_stats_absorb_vocabulary():
    graph = _graph()
    with DiagnosisStore() as db:
        db.evidence_for(graph.report_key)  # miss
        db.put_evidence(graph)
        db.evidence_for(graph.report_key)  # hit
        registry = MetricsRegistry()
        db.absorb_into(registry)
        assert registry.counter("evidence_store_hits") == 1
        assert registry.counter("evidence_store_misses") == 1
        assert registry.counter("evidence_store_writes") == 1


def test_v3_file_migrates_to_v4_with_evidence_tables(tmp_path):
    from repro.store.store import _MIGRATIONS

    path = str(tmp_path / "v3.db")
    conn = sqlite3.connect(path)
    with conn:
        for ddl in _DDL_V1:
            conn.execute(ddl)
        for version in (1, 2):  # bring the file to v3 exactly
            for statement in _MIGRATIONS[version]:
                conn.execute(statement)
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', '3')"
        )
        conn.execute(
            "INSERT INTO reports (signature, bug_id, digest, degraded, "
            "created_at) VALUES ('b|crash|1', 'b', '{}', 0, 0.0)"
        )
    conn.close()
    graph = _graph()
    with DiagnosisStore(path) as db:
        assert db.schema_version == SCHEMA_VERSION
        assert db.get_report("b|crash|1") is not None  # old rows survive
        assert db.counts()["evidence_nodes"] == 0
        assert db.put_evidence(graph)  # new tables are writable
        assert db.evidence_for(graph.report_key).digest() == graph.digest()
