"""Evidence graphs: content addressing, dedup, span-id-free digests."""

from repro.provenance import (
    EvidenceGraph,
    EvidenceNode,
    build_evidence_graph,
    report_key,
)

DIGEST = {
    "bug_kind": "order-violation",
    "failing_uid": 41,
    "diagnosed": True,
    "root_cause": "unordered write/read pair at uid 41",
    "ranked_patterns": ["W10 -> R12", "W10 -> R14"],
    "stage_funnel": {"alias_candidates": 6, "rank1_candidates": 2},
}


class _Sample:
    def __init__(self, label, failing, buffers):
        self.label = label
        self.failing = failing
        self.buffers = buffers


class _Span:
    def __init__(self, name, span_id):
        self.name = name
        self.span_id = span_id


def _samples():
    failing = _Sample("failure", True, {1: b"\xaa\xbb", 2: b"\xcc"})
    # the success shares thread 1's buffer content with the failing run:
    # the pt_buffer node must be deduplicated, not emitted twice
    successes = [_Sample("success-0", False, {1: b"\xaa\xbb"})]
    return failing, successes


def test_nodes_are_content_addressed():
    a = EvidenceNode.build("pattern", {"pattern": "W1 -> R2", "rank": 1})
    b = EvidenceNode.build("pattern", {"pattern": "W1 -> R2", "rank": 1})
    c = EvidenceNode.build("pattern", {"pattern": "W1 -> R2", "rank": 2})
    assert a.digest == b.digest
    assert a.digest != c.digest
    # kind participates in the address: same payload, different kind
    assert EvidenceNode.build("trace", a.payload).digest != a.digest


def test_report_key_is_key_order_free():
    assert report_key(DIGEST) == report_key(dict(reversed(list(DIGEST.items()))))
    assert report_key(DIGEST) != report_key({**DIGEST, "failing_uid": 42})


def test_build_dedupes_shared_buffers_and_links_stages():
    failing, successes = _samples()
    graph = build_evidence_graph(DIGEST, [failing], successes)
    assert graph.report_key == report_key(DIGEST)
    # thread 1's identical ring appears once even though two traces carry it
    buffers = graph.nodes_of_kind("pt_buffer")
    assert len(buffers) == 2  # (tid 1 shared) + (tid 2 failing-only)
    assert len(graph.nodes_of_kind("trace")) == 2
    assert len(graph.nodes_of_kind("pattern")) == len(DIGEST["ranked_patterns"])
    [report] = graph.nodes_of_kind("report")
    # the report links to every ranked pattern, each pattern to constraints
    pattern_edges = graph.edges_from(report.digest)
    assert {e.stage for e in pattern_edges} == {"statistical_diagnosis"}
    # node digests are unique (dict-backed build cannot emit duplicates)
    assert len({n.digest for n in graph.nodes}) == len(graph.nodes)
    assert len(graph.edges) == len(
        {(e.src, e.dst, e.stage) for e in graph.edges}
    )


def test_undiagnosed_report_still_links_its_constraint_funnel():
    digest = {**DIGEST, "ranked_patterns": [], "diagnosed": False}
    failing, successes = _samples()
    graph = build_evidence_graph(digest, [failing], successes)
    [report] = graph.nodes_of_kind("report")
    [edge] = graph.edges_from(report.digest)
    assert edge.stage == "pattern_computation"
    assert graph.node(edge.dst).kind == "constraints"


def test_digest_excludes_span_ids():
    failing, successes = _samples()
    cold = build_evidence_graph(DIGEST, [failing], successes)
    traced = build_evidence_graph(
        DIGEST,
        [failing],
        successes,
        spans=[_Span("points_to", 7), _Span("statistical_diagnosis", 9)],
    )
    # the traced build stamped span ids onto edges...
    assert any(e.span_id is not None for e in traced.edges)
    assert all(e.span_id is None for e in cold.edges)
    # ...but the evidence digest is identical: annotation, not identity
    assert traced.digest() == cold.digest()


def test_to_dict_round_trip_preserves_digest():
    failing, successes = _samples()
    graph = build_evidence_graph(DIGEST, [failing], successes)
    rebuilt = EvidenceGraph.from_dict(graph.to_dict())
    assert rebuilt.digest() == graph.digest()
    assert rebuilt.report_key == graph.report_key
    assert {n.digest for n in rebuilt.nodes} == {n.digest for n in graph.nodes}


def test_render_walks_report_first():
    failing, successes = _samples()
    graph = build_evidence_graph(DIGEST, [failing], successes)
    text = graph.render()
    lines = text.splitlines()
    assert lines[0].startswith("evidence graph ")
    assert "[report] report: unordered write/read pair at uid 41" in text
    assert "[pattern] pattern #1: W10 -> R12" in text
    assert "[pt_buffer]" in text
