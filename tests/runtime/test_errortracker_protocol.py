"""Error tracker classification and protocol dataclasses."""

from repro.ir import parse_module
from repro.runtime import FailureNotification, TraceRequest, TraceResponse, classify
from repro.sim import Machine


def _result(src):
    return Machine(parse_module(src)).run("main")


def test_classify_crash():
    code = classify(
        _result(
            """
module t
global g: ptr<i64> = null
func main() -> void {
entry:
  %p = load @g
  %v = load %p
  ret
}
"""
        )
    )
    assert code is not None
    assert code.kind == "crash"
    assert code.failing_tid == 1
    assert code.report is not None


def test_classify_deadlock():
    code = classify(
        _result(
            """
module t
global mu: lock
func main() -> void {
entry:
  lock @mu
  lock @mu
  ret
}
"""
        )
    )
    assert code.kind == "deadlock"


def test_classify_success_and_steplimit_are_none():
    assert classify(_result("module t\nfunc main() -> void {\nentry:\n  ret\n}")) is None
    m = parse_module("module t\nfunc main() -> void {\nentry:\n  br entry\n}")
    r = Machine(m, max_steps=100).run("main")
    assert r.outcome == "step-limit"
    assert classify(r) is None  # harness outcome, not a guest failure


def test_protocol_dataclasses():
    req = TraceRequest(label="s1", seed=7, breakpoint_uids=(3, 4))
    assert req.seed == 7
    resp = TraceResponse(label="s1", outcome="success", sample=None)
    assert resp.sample is None
    note = FailureNotification(bug_hint="crash", failing_uid=9, failing_tid=2, time=100)
    assert note.failing_uid == 9
