"""Client/server runtime: failure detection, trace collection policy,
predecessor fallback, protocol messages."""

import random

import pytest

from repro.ir import parse_module
from repro.runtime import (
    SnorlaxClient,
    SnorlaxServer,
    TraceRequest,
    classify,
)

SRC = """
module t
struct Cfg { limit: i64 }
global g_cfg: ptr<Cfg> = null

func handler(d_poll: i64, d_use: i64) -> void {
entry:
  delay %d_poll
  %p = load @g_cfg
  %ok = cmp ne 0, 1
  cbr %ok, use, use
use:
  delay %d_use
  %f = fieldaddr %p, limit
  %v = load %f          @ h.c:12
  ret
}

func main(d_init: i64, d_poll: i64, d_use: i64) -> void {
entry:
  %t = spawn @handler(%d_poll, %d_use)
  delay %d_init
  %c = malloc Cfg
  %f = fieldaddr %c, limit
  store 10, %f
  store %c, @g_cfg
  %ok = cmp ne 0, 1
  cbr %ok, fin, fin
fin:
  join %t
  ret
}
"""


def _workload(seed):
    rng = random.Random(seed)
    q = 200_000
    d_init = 5 * q
    k = rng.choice([-2, -1, 1, 2])
    return (d_init, max(d_init + k * q, q), 4 * q)


@pytest.fixture(scope="module")
def module():
    return parse_module(SRC)


@pytest.fixture(scope="module")
def client(module):
    return SnorlaxClient(module, _workload)


def test_find_runs_splits_by_outcome(client):
    fails = client.find_runs(True, 3, start_seed=0)
    oks = client.find_runs(False, 3, start_seed=0)
    assert len(fails) == 3 and all(r.failed for r in fails)
    assert len(oks) == 3 and all(not r.failed for r in oks)


def test_failure_snapshot_taken_automatically(client):
    run = client.find_runs(True, 1)[0]
    assert run.snapshot is not None
    assert run.snapshot.reason == "failure"
    assert run.failure.kind == "crash"


def test_classify_success_is_none(client):
    run = client.find_runs(False, 1)[0]
    assert classify(run.result) is None


def test_untraced_run_matches_outcome(client):
    run = client.find_runs(True, 1, start_seed=0)
    base = client.run_untraced(run[0].seed)
    assert base.outcome == run[0].result.outcome


def test_server_collects_successful_traces(module, client):
    failing = client.find_runs(True, 1)[0]
    server = SnorlaxServer(module, success_traces_wanted=5)
    samples = server.collect_successful_traces(
        client, failing.failure.failing_uid, 5_000
    )
    assert len(samples) == 5
    assert all(not s.failing for s in samples)
    assert all(s.buffers for s in samples)
    assert server.stats.success_traces == 5


def test_server_end_to_end_diagnosis(module, client):
    failing = client.find_runs(True, 1)[0]
    server = SnorlaxServer(module)
    report = server.diagnose(failing, client).report
    assert report.diagnosed
    read_uid = next(
        i.uid for i in module.instructions() if i.loc and i.loc.line == 12
    )
    # read-before-init: the stale pointer read precedes the publication
    diag = report.ordered_target_uids()
    assert report.bug_kind == "order-violation"
    assert report.root_cause.f1 == 1.0


def test_handle_trace_request_protocol(module, client):
    server = SnorlaxServer(module)
    failing = client.find_runs(True, 1)[0]
    req = TraceRequest(label="probe", seed=failing.seed, breakpoint_uids=())
    resp = server.handle_trace_request(client, req)
    assert resp.label == "probe"
    assert resp.outcome in ("crash", "success", "assert")
    if resp.sample is not None:
        assert resp.sample.buffers


def test_handle_trace_request_counts_executions(module, client):
    # Regression: the message-level API used to bypass the stats counter,
    # so a server driven over the protocol under-reported executions.
    server = SnorlaxServer(module)
    req = TraceRequest(label="probe", seed=123)
    server.handle_trace_request(client, req)
    server.handle_trace_request(client, req)
    assert server.stats.executions_requested == 2


def test_handle_trace_request_honors_breakpoint_skip(module, client):
    # Regression: breakpoint_skip was dropped on the protocol path, so
    # message-driven collection could not vary execution maturity the way
    # collect_successful_traces does.
    server = SnorlaxServer(module)
    ok = client.find_runs(False, 1)[0]
    uid = next(i.uid for i in module.instructions() if i.loc and i.loc.line == 12)
    base = server.handle_trace_request(
        client, TraceRequest(label="s0", seed=ok.seed, breakpoint_uids=(uid,))
    )
    assert base.sample is not None
    # An absurdly large skip means the breakpoint never fires, so a
    # successful run produces no snapshot at all.
    skipped = server.handle_trace_request(
        client,
        TraceRequest(
            label="s1", seed=ok.seed, breakpoint_uids=(uid,), breakpoint_skip=10_000
        ),
    )
    assert skipped.outcome == "success"
    assert skipped.sample is None


def test_parallel_collection_gathers_identical_evidence(module, client):
    # Speculative parallel collection must be invisible in the evidence:
    # same samples, same labels, same bytes as the serial policy — only
    # wall-clock (and the number of *issued* requests) may differ.
    failing = client.find_runs(True, 1)[0]
    uid = failing.failure.failing_uid
    serial = SnorlaxServer(module, success_traces_wanted=4)
    base = serial.collect_successful_traces(client, uid, 5_000)
    parallel = SnorlaxServer(
        module, success_traces_wanted=4, collection_parallelism=3
    )
    spec = parallel.collect_successful_traces(client, uid, 5_000)
    assert [s.label for s in base] == [s.label for s in spec]
    assert [s.buffers for s in base] == [s.buffers for s in spec]
    assert [s.positions for s in base] == [s.positions for s in spec]
    assert parallel.stats.success_traces == serial.stats.success_traces


def test_batched_collection_gathers_identical_evidence(module, client):
    # The batched transport (whole speculative waves in one frame) must
    # be invisible in the evidence, exactly like thread parallelism.
    failing = client.find_runs(True, 1)[0]
    uid = failing.failure.failing_uid
    serial = SnorlaxServer(module, success_traces_wanted=4)
    base = serial.collect_successful_traces(client, uid, 5_000)
    batched = SnorlaxServer(module, success_traces_wanted=4)

    def send_batch(requests):
        return [batched.handle_trace_request(client, r) for r in requests]

    spec = batched.collect_traces_via(
        lambda req: batched.handle_trace_request(client, req),
        uid,
        5_000,
        send_batch=send_batch,
    )
    assert [s.label for s in base] == [s.label for s in spec]
    assert [s.buffers for s in base] == [s.buffers for s in spec]
    assert [s.positions for s in base] == [s.positions for s in spec]
    assert batched.stats.success_traces == serial.stats.success_traces


def test_adaptive_stopping_is_transport_invariant(module, client):
    # stable-top stopping is a pure function of the sample prefix: the
    # serial and batched transports must stop at the same sample
    failing = client.find_runs(True, 1)[0]
    uid = failing.failure.failing_uid
    collected = {}
    for label, batch in (("serial", False), ("batched", True)):
        server = SnorlaxServer(
            module,
            success_traces_wanted=10,
            stopping="stable-top",
            adaptive_min_traces=3,
        )
        failing_sample = server.sample_from_run("failure", failing)

        def send_batch(requests, s=server):
            return [s.handle_trace_request(client, r) for r in requests]

        collected[label] = server.collect_traces_via(
            lambda req, s=server: s.handle_trace_request(client, req),
            uid,
            5_000,
            send_batch=send_batch if batch else None,
            failing_sample=failing_sample,
        )
        assert server.last_collection is not None
        assert server.last_collection.satisfied
    serial, batched = collected["serial"], collected["batched"]
    assert [s.label for s in serial] == [s.label for s in batched]
    assert [s.buffers for s in serial] == [s.buffers for s in batched]
    # adaptive stopping actually stopped early — fewer than the fixed cap
    assert len(serial) < 10


def test_server_caches_shared_across_diagnoses(module, client):
    from repro.core.cache import AnalysisCache, DecodedTraceCache

    failing = client.find_runs(True, 1)[0]
    server = SnorlaxServer(
        module,
        analysis_cache=AnalysisCache(),
        trace_cache=DecodedTraceCache(),
    )
    first = server.diagnose(failing, client).report
    cold = dict(server.last_pipeline.last_cache_events)
    assert cold["analysis_cache_misses"] == 1
    # streaming decode warms the trace cache while collection is still
    # in flight, so even the cold pipeline run sees only hits
    assert cold["trace_cache_misses"] == 0
    assert cold["trace_cache_hits"] > 0
    second = server.diagnose(failing, client).report
    warm = server.last_pipeline.last_cache_events
    # identical evidence: points-to and every decode come from cache
    assert warm["analysis_cache_hits"] == 1
    assert warm["trace_cache_misses"] == 0
    assert warm["trace_cache_hits"] == cold["trace_cache_hits"]
    assert first.root_cause.signature == second.root_cause.signature


def test_collection_identical_via_message_api(module, client):
    # The two collection paths must gather identical evidence: the
    # in-process convenience wrapper is now defined as collect_traces_via
    # over handle_trace_request.
    failing = client.find_runs(True, 1)[0]
    uid = failing.failure.failing_uid
    a = SnorlaxServer(module, success_traces_wanted=4)
    direct = a.collect_successful_traces(client, uid, 5_000)
    b = SnorlaxServer(module, success_traces_wanted=4)
    via = b.collect_traces_via(
        lambda req: b.handle_trace_request(client, req), uid, 5_000
    )
    assert [s.label for s in direct] == [s.label for s in via]
    assert [s.buffers for s in direct] == [s.buffers for s in via]
    assert a.stats == b.stats
    assert a.stats.executions_requested > 0
    server = SnorlaxServer(module)
    read_uid = next(
        i.uid for i in module.instructions() if i.loc and i.loc.line == 12
    )
    widened = server._widen_breakpoints(read_uid)
    assert widened[0] == read_uid
    assert len(widened) > 1  # plus predecessor block anchors
