"""Span tracer unit behaviour: nesting, threads, disabled no-op."""

import json
import threading

from repro.obs import NULL_SPAN, NULL_TRACER, Tracer


def test_nesting_follows_the_thread_stack():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert [s.name for s in tracer.finished_spans()] == ["inner", "outer"]
    assert outer.duration_ns >= inner.duration_ns >= 0


def test_attributes_at_open_and_via_set():
    tracer = Tracer()
    with tracer.span("work", phase="solve") as span:
        span.set(constraints=7)
    done = tracer.finished_spans()[0]
    assert done.attrs == {"phase": "solve", "constraints": 7}


def test_exception_marks_the_span_and_still_finishes():
    tracer = Tracer()
    try:
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    span = tracer.finished_spans()[0]
    assert span.attrs["error"] == "RuntimeError"
    assert span.end_ns is not None


def test_sibling_threads_do_not_nest_into_each_other():
    tracer = Tracer()
    ready = threading.Barrier(2)

    def worker(name):
        ready.wait()
        with tracer.span(name):
            pass

    threads = [
        threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(s.parent_id is None for s in tracer.finished_spans())


def test_explicit_parent_crosses_threads():
    tracer = Tracer()
    with tracer.span("collect") as parent:

        def worker():
            with tracer.span("trace_request", parent=parent):
                pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
    child = next(s for s in tracer.finished_spans() if s.name == "trace_request")
    assert child.parent_id == parent.span_id


def test_record_backdates_a_finished_span():
    tracer = Tracer()
    with tracer.span("job") as job:
        span = tracer.record("queue_wait", 0.5, parent=job)
    assert span.parent_id == job.span_id
    assert 0.4 < span.duration_s < 0.6


def test_disabled_tracer_is_a_shared_noop():
    tracer = Tracer(enabled=False)
    # no allocation: every span() call hands back the same context
    # manager, which yields the same null span
    assert tracer.span("a") is tracer.span("b")
    with tracer.span("a") as span:
        span.set(anything=1)
    assert span is NULL_SPAN
    assert span.attrs == {}
    assert tracer.finished_spans() == []
    assert len(tracer) == 0
    assert tracer.record("late", 1.0) is NULL_SPAN
    assert len(NULL_TRACER) == 0  # the shared instance never accumulates


def test_subtree_and_render_tree():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("a"):
            with tracer.span("leaf"):
                pass
        with tracer.span("b"):
            pass
    root = next(s for s in tracer.finished_spans() if s.name == "root")
    names = [s.name for s in tracer.subtree(root)]
    assert names == ["root", "a", "leaf", "b"]  # depth-first, start order
    rendered = tracer.render_tree()
    lines = rendered.splitlines()
    assert lines[0].startswith("root")
    assert lines[1].startswith("  a")
    assert lines[2].startswith("    leaf")


def test_jsonl_is_one_valid_object_per_span():
    tracer = Tracer()
    with tracer.span("outer", k="v"):
        with tracer.span("inner"):
            pass
    lines = tracer.to_jsonl().splitlines()
    spans = [json.loads(line) for line in lines]
    assert [s["name"] for s in spans] == ["outer", "inner"]  # start order
    assert spans[1]["parent_id"] == spans[0]["span_id"]
    assert spans[0]["attrs"] == {"k": "v"}
    tracer.reset()
    assert len(tracer) == 0
