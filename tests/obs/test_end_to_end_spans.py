"""Observability threaded through a real diagnosis, and the repro.api
facade's equivalence with the legacy entry points."""

import random

import pytest

from repro import api
from repro.core.pipeline import LazyDiagnosis
from repro.errors import DiagnosisError
from repro.fleet import DiagnosisJobQueue, FleetMetrics
from repro.ir import parse_module
from repro.obs import NULL_TRACER, Observability, Tracer
from repro.runtime import SnorlaxClient, SnorlaxServer

SRC = """
module t
struct Cfg { limit: i64 }
global g_cfg: ptr<Cfg> = null

func handler(d_poll: i64, d_use: i64) -> void {
entry:
  delay %d_poll
  %p = load @g_cfg
  %ok = cmp ne 0, 1
  cbr %ok, use, use
use:
  delay %d_use
  %f = fieldaddr %p, limit
  %v = load %f          @ h.c:12
  ret
}

func main(d_init: i64, d_poll: i64, d_use: i64) -> void {
entry:
  %t = spawn @handler(%d_poll, %d_use)
  delay %d_init
  %c = malloc Cfg
  %f = fieldaddr %c, limit
  store 10, %f
  store %c, @g_cfg
  %ok = cmp ne 0, 1
  cbr %ok, fin, fin
fin:
  join %t
  ret
}
"""

STAGES = (
    "trace_processing",
    "points_to",
    "type_ranking",
    "pattern_computation",
    "statistical_diagnosis",
)


def _workload(seed):
    rng = random.Random(seed)
    q = 200_000
    d_init = 5 * q
    k = rng.choice([-2, -1, 1, 2])
    return (d_init, max(d_init + k * q, q), 4 * q)


@pytest.fixture(scope="module")
def module():
    return parse_module(SRC)


@pytest.fixture(scope="module")
def client(module):
    return SnorlaxClient(module, _workload)


@pytest.fixture(scope="module")
def failing(client):
    return client.find_runs(True, 1)[0]


@pytest.fixture(scope="module")
def traced_diagnosis(module, client, failing):
    obs = Observability()
    server = SnorlaxServer(module, success_traces_wanted=5, obs=obs)
    result = server.diagnose(failing, client)
    return obs, result


def _children(spans, parent):
    return [s for s in spans if s.parent_id == parent.span_id]


def test_span_tree_covers_the_whole_job(traced_diagnosis):
    obs, result = traced_diagnosis
    spans = obs.tracer.finished_spans()
    job = next(s for s in spans if s.name == "diagnosis_job")
    assert job.parent_id is None
    top = [s.name for s in _children(spans, job)]
    assert top == ["collect_traces", "diagnose"]
    collect = next(s for s in spans if s.name == "collect_traces")
    requests = _children(spans, collect)
    assert len(requests) >= 5  # one round-trip per step-8 attempt
    assert all(s.name == "trace_request" for s in requests)
    assert all(
        s.attrs["outcome"] in ("ok", "failing", "miss") for s in requests
    )
    assert collect.attrs["collected"] == 5


def test_span_tree_has_all_five_stages_nested(traced_diagnosis):
    obs, _ = traced_diagnosis
    spans = obs.tracer.finished_spans()
    diagnose = next(s for s in spans if s.name == "diagnose")
    stage_names = [s.name for s in _children(spans, diagnose)]
    assert stage_names == list(STAGES)  # in pipeline order
    points_to = next(s for s in spans if s.name == "points_to")
    solve_children = {s.name for s in _children(spans, points_to)}
    assert "generate_constraints" in solve_children
    assert "solve" in solve_children
    assert diagnose.attrs["diagnosed"] is True


def test_stage_timers_land_in_the_unified_registry(traced_diagnosis):
    obs, _ = traced_diagnosis
    for stage in STAGES:
        assert obs.registry.timings(f"stage_{stage}"), stage
    # solver + cache-event counters share the same registry
    assert obs.registry.counter("solver_nodes") > 0


def test_result_bundles_the_pipeline_subtree(traced_diagnosis):
    obs, result = traced_diagnosis
    assert result.spans and result.spans[0].name == "diagnose"
    assert {s.name for s in result.spans} >= set(STAGES)
    assert set(result.stage_seconds) == set(STAGES)


def test_flight_recorder_embedded_in_the_report(traced_diagnosis):
    _, result = traced_diagnosis
    recorder = result.report.flight_recorder
    assert recorder is not None and recorder.startswith("--- flight recorder ---")
    # the server widened it to the whole job, collection included
    assert "diagnosis_job" in recorder and "collect_traces" in recorder
    for stage in STAGES:
        assert stage in recorder
    assert recorder in result.report.render()


def test_disabled_observability_records_nothing(module, client, failing):
    before = len(NULL_TRACER)
    server = SnorlaxServer(module, success_traces_wanted=3)  # obs=None
    result = server.diagnose(failing, client)
    assert len(NULL_TRACER) == before == 0
    assert result.spans == ()
    assert result.report.flight_recorder is None


def test_api_diagnose_matches_legacy_entry_points(module, client, failing):
    from repro.fleet.server import report_digest

    server = SnorlaxServer(module, success_traces_wanted=5)
    failing_sample = server.sample_from_run("failure", failing)
    successes = server.collect_successful_traces(
        client, failing.failure.failing_uid, 10_000
    )
    via_api = api.diagnose(module, traces=[failing_sample, *successes])
    legacy = LazyDiagnosis(module).diagnose([failing_sample], successes)
    assert report_digest(via_api.report) == report_digest(legacy)
    assert via_api.diagnosed and via_api.root_cause is not None
    assert via_api.request.failing == (failing_sample,)
    assert len(via_api.request.successes) == len(successes)
    # and the server flow agrees end to end on the same failing run
    via_server = SnorlaxServer(module, success_traces_wanted=5).diagnose(
        failing, client
    )
    assert report_digest(via_server.report) == report_digest(via_api.report)


def test_api_diagnose_requires_failing_evidence(module):
    with pytest.raises(DiagnosisError):
        api.diagnose(module, traces=[])


def test_diagnose_failure_shim_is_gone():
    # the report-only legacy shape was removed after one deprecation
    # cycle; api.diagnose / SnorlaxServer.diagnose are the only doors
    assert not hasattr(SnorlaxServer, "diagnose_failure")


def test_job_queue_emits_fleet_job_spans():
    tracer = Tracer()
    queue = DiagnosisJobQueue(
        workers=1, metrics=FleetMetrics(), tracer=tracer
    )
    try:
        future, deduplicated = queue.submit("pbzip2|sig", lambda: 42)
        assert future.result(timeout=30) == 42
        assert not deduplicated
    finally:
        queue.shutdown()
    spans = tracer.finished_spans()
    job = next(s for s in spans if s.name == "fleet_job")
    wait = next(s for s in spans if s.name == "job_queue_wait")
    assert wait.parent_id == job.span_id
    assert job.attrs["signature"] == "pbzip2|sig"
