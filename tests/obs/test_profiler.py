"""Sampling profiler: attribution without instrumenting the hot path."""

import time

import pytest

from repro.obs import Observability, SamplingProfiler


def _busy(deadline: float) -> int:
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


def test_profiler_samples_the_entering_thread():
    profiler = SamplingProfiler(interval_s=0.002)
    with profiler:
        deadline = time.perf_counter() + 0.05
        while profiler.samples < 3 and time.perf_counter() < deadline + 1.0:
            _busy(time.perf_counter() + 0.02)
    assert profiler.samples >= 3
    assert profiler.self_counts  # the busy loop showed up somewhere
    top = profiler.top(3)
    assert top and top[0][1] >= 1
    summary = profiler.summary()
    assert summary["profile_samples"] == profiler.samples
    assert summary["profile_top_self"]
    assert "profile:" in profiler.render()


def test_profiler_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        SamplingProfiler(interval_s=0)


def test_no_sample_lands_after_stop_returns():
    # regression: stop() used to set the flag and return without a
    # barrier, so a sampler mid-_record could land one more sample in a
    # profile the flight recorder had already serialized
    profiler = SamplingProfiler(interval_s=0.001)
    with profiler:
        deadline = time.perf_counter() + 2.0
        while profiler.samples < 1 and time.perf_counter() < deadline:
            _busy(time.perf_counter() + 0.01)
    frozen = (profiler.samples, dict(profiler.self_counts))
    time.sleep(0.02)  # generous window for any straggler sampler tick
    assert (profiler.samples, dict(profiler.self_counts)) == frozen
    # even a direct recording attempt after stop() must bail: the loop
    # re-checks the stop flag under the record lock
    import sys

    frame = sys._getframe()
    profiler._record(frame)
    assert (profiler.samples, dict(profiler.self_counts)) == frozen


def test_stop_is_idempotent():
    profiler = SamplingProfiler(interval_s=0.001)
    with profiler:
        pass
    profiler.stop()  # second stop: no thread to join, no error
    assert profiler._thread is None


def test_observability_profiler_hook():
    off = Observability()
    with off.profiler() as prof:
        assert prof is None  # profiling off: a null context
    on = Observability(profile=True, profile_interval_s=0.001)
    with on.profiler() as prof:
        assert isinstance(prof, SamplingProfiler)
