"""Sampling profiler: attribution without instrumenting the hot path."""

import time

import pytest

from repro.obs import Observability, SamplingProfiler


def _busy(deadline: float) -> int:
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


def test_profiler_samples_the_entering_thread():
    profiler = SamplingProfiler(interval_s=0.002)
    with profiler:
        deadline = time.perf_counter() + 0.05
        while profiler.samples < 3 and time.perf_counter() < deadline + 1.0:
            _busy(time.perf_counter() + 0.02)
    assert profiler.samples >= 3
    assert profiler.self_counts  # the busy loop showed up somewhere
    top = profiler.top(3)
    assert top and top[0][1] >= 1
    summary = profiler.summary()
    assert summary["profile_samples"] == profiler.samples
    assert summary["profile_top_self"]
    assert "profile:" in profiler.render()


def test_profiler_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        SamplingProfiler(interval_s=0)


def test_observability_profiler_hook():
    off = Observability()
    with off.profiler() as prof:
        assert prof is None  # profiling off: a null context
    on = Observability(profile=True, profile_interval_s=0.001)
    with on.profiler() as prof:
        assert isinstance(prof, SamplingProfiler)
