"""Exporters: Prometheus text round-trip, HTTP scrape, JSONL span log."""

import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsHTTPServer,
    MetricsRegistry,
    Tracer,
    parse_prometheus_text,
    prometheus_text,
    read_trace_jsonl,
    render_flight_recorder,
    write_trace_jsonl,
)


@pytest.fixture
def registry():
    m = MetricsRegistry()
    m.inc("jobs_completed", 3)
    m.inc("trace_cache_hits", 17)
    m.gauge("queue_depth", 2)
    for v in (0.010, 0.020, 0.030, 0.040):
        m.observe("diagnosis_latency", v)
    return m


def test_prometheus_round_trip(registry):
    samples = parse_prometheus_text(prometheus_text(registry))
    # counters survive exactly
    assert samples["snorlax_jobs_completed"] == 3
    assert samples["snorlax_trace_cache_hits"] == 17
    assert samples["snorlax_queue_depth"] == 2
    # histograms export as summaries with count/sum/quantiles
    assert samples["snorlax_diagnosis_latency_seconds_count"] == 4
    assert samples["snorlax_diagnosis_latency_seconds_sum"] == pytest.approx(0.1)
    p50 = samples['snorlax_diagnosis_latency_seconds{quantile="0.5"}']
    assert p50 == pytest.approx(registry.percentile("diagnosis_latency", 50))


def test_prometheus_type_lines_and_prefix(registry):
    text = prometheus_text(registry, prefix="repro_")
    assert "# TYPE repro_jobs_completed counter" in text
    assert "# TYPE repro_queue_depth gauge" in text
    assert "# TYPE repro_diagnosis_latency_seconds summary" in text


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_prometheus_text("this is { not a sample\n")


def test_metric_names_are_sanitized():
    m = MetricsRegistry()
    m.inc("weird name-with.chars")
    samples = parse_prometheus_text(prometheus_text(m))
    assert samples["snorlax_weird_name_with_chars"] == 1


def test_metric_names_starting_with_digit_get_guarded():
    # regression: "0_errors" rendered an unparseable sample line under
    # the 0.0.4 grammar (names must start [a-zA-Z_:])
    from repro.obs.exporters import metric_name

    assert metric_name("0_errors") == "_0_errors"
    assert metric_name("0_errors", prefix="snorlax_") == "snorlax_0_errors"
    assert metric_name("") == "_"
    assert metric_name("shard#1.lag") == "shard_1_lag"
    m = MetricsRegistry()
    m.inc("0_errors", 2)
    samples = parse_prometheus_text(prometheus_text(m, prefix=""))
    assert samples["_0_errors"] == 2


def test_non_finite_values_use_exposition_spellings():
    # regression: repr() gives "nan"/"inf", which strict scrapers
    # reject; the 0.0.4 spellings are NaN / +Inf / -Inf
    import math

    from repro.obs.exporters import format_value

    assert format_value(float("nan")) == "NaN"
    assert format_value(float("inf")) == "+Inf"
    assert format_value(float("-inf")) == "-Inf"
    assert format_value(1.5) == "1.5"
    m = MetricsRegistry()
    m.gauge("backlog_eta", float("inf"))
    m.gauge("corrupt_ratio", float("nan"))
    text = prometheus_text(m)
    assert "snorlax_backlog_eta +Inf" in text
    samples = parse_prometheus_text(text)
    assert samples["snorlax_backlog_eta"] == float("inf")
    assert math.isnan(samples["snorlax_corrupt_ratio"])


def test_http_scrape_endpoint(registry):
    server = MetricsHTTPServer(registry, port=0)
    try:
        host, port = server.start()
        assert port > 0
        with urllib.request.urlopen(server.url, timeout=5) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            body = resp.read().decode()
        samples = parse_prometheus_text(body)
        assert samples["snorlax_jobs_completed"] == 3
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                f"http://{host}:{port}/not-metrics", timeout=5
            )
    finally:
        server.stop()


def test_trace_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    with tracer.span("root", bug="pbzip2"):
        with tracer.span("stage"):
            pass
    path = tmp_path / "trace.jsonl"
    assert write_trace_jsonl(path, tracer) == 2
    spans = read_trace_jsonl(path)
    assert [s["name"] for s in spans] == ["root", "stage"]
    assert spans[0]["attrs"] == {"bug": "pbzip2"}
    # an empty tracer writes an empty (but valid) artifact
    empty = tmp_path / "empty.jsonl"
    assert write_trace_jsonl(empty, Tracer()) == 0
    assert read_trace_jsonl(empty) == []


def test_flight_recorder_renders_the_subtree():
    tracer = Tracer()
    with tracer.span("other_job"):
        pass
    with tracer.span("diagnosis_job") as root:
        with tracer.span("points_to"):
            pass
    text = render_flight_recorder(tracer, root)
    assert text.startswith("--- flight recorder ---")
    assert "diagnosis_job" in text and "points_to" in text
    assert "other_job" not in text  # only the job's own subtree
