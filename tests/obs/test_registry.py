"""MetricsRegistry: the unified counters/gauges/histograms surface."""

from repro.core.cache import CacheStats
from repro.obs import NULL_REGISTRY, MetricsRegistry


def test_counters_and_gauges():
    m = MetricsRegistry()
    m.inc("jobs_submitted")
    m.inc("jobs_submitted", 4)
    m.gauge("queue_depth", 3)
    m.gauge("queue_depth", 1)  # gauges overwrite
    assert m.counter("jobs_submitted") == 5
    assert m.counter("never_touched") == 0
    assert m.gauge_value("queue_depth") == 1


def test_percentile_interpolates_linearly():
    m = MetricsRegistry()
    for v in range(1, 101):
        m.observe("latency", float(v))
    assert m.percentile("latency", 50) == 50.5
    assert m.percentile("latency", 99) == 99.01
    assert m.percentile("latency", 100) == 100.0
    assert m.median("latency") == 50.5
    assert m.percentile("empty", 95) == 0.0
    m.observe("single", 7.0)
    assert m.percentile("single", 95) == 7.0


def test_nan_observations_do_not_poison_percentiles():
    # regression: NaN compares False with everything, so one NaN in a
    # histogram silently misordered sorted() and corrupted every
    # quantile after it
    m = MetricsRegistry()
    for v in (1.0, float("nan"), 2.0, 3.0, float("nan"), 4.0):
        m.observe("latency", v)
    assert m.percentile("latency", 50) == 2.5
    assert m.percentile("latency", 100) == 4.0
    assert m.median("latency") == 2.5
    # a histogram of only NaN answers like an empty one, never NaN
    m.observe("poisoned", float("nan"))
    assert m.percentile("poisoned", 95) == 0.0
    assert m.median("poisoned") == 0.0


def test_as_dict_counts_nan_but_summarizes_finite():
    m = MetricsRegistry()
    m.observe("t", 1.0)
    m.observe("t", float("nan"))
    m.observe("t", 3.0)
    summary = m.as_dict()["timers"]["t"]
    assert summary["count"] == 3  # everything observed is counted...
    assert summary["total_s"] == 4.0  # ...stats cover the finite ones
    assert summary["median_s"] == 2.0
    assert summary["max_s"] == 3.0


def test_timer_context_manager_observes():
    m = MetricsRegistry()
    with m.timer("stage_points_to"):
        pass
    timings = m.timings("stage_points_to")
    assert len(timings) == 1 and timings[0] >= 0.0


def test_counters_with_prefix():
    m = MetricsRegistry()
    m.inc("chaos_corrupt", 2)
    m.inc("chaos_drop")
    m.inc("jobs_completed")
    assert m.counters_with_prefix("chaos_") == {
        "chaos_corrupt": 2,
        "chaos_drop": 1,
    }


def test_merge_counters_adds_with_optional_prefix():
    m = MetricsRegistry()
    m.merge_counters({"hits": 2, "misses": 1}, prefix="trace_cache_")
    m.merge_counters({"hits": 3}, prefix="trace_cache_")
    assert m.counter("trace_cache_hits") == 5
    assert m.counter("trace_cache_misses") == 1


def test_absorb_solver_stats_uses_as_counters():
    class FakeStats:
        def as_counters(self):
            return {"solver_propagations": 10, "solver_constraints": 4}

    m = MetricsRegistry()
    m.absorb_solver_stats(FakeStats())
    m.absorb_solver_stats(FakeStats())  # increments accumulate
    assert m.counter("solver_propagations") == 20
    m.absorb_solver_stats(object())  # no as_counters: silently skipped


def test_absorb_cache_stats_sets_totals_not_increments():
    stats = CacheStats()
    stats.hits = 3
    stats.misses = 1
    m = MetricsRegistry()
    m.absorb_cache_stats("analysis_cache", stats)
    stats.hits = 5  # the cache keeps counting...
    m.absorb_cache_stats("analysis_cache", stats)
    # ...and absorbing again reflects the latest totals, not 3 + 5
    assert m.counter("analysis_cache_hits") == 5
    assert m.counter("analysis_cache_misses") == 1


def test_as_dict_snapshot_shape():
    m = MetricsRegistry()
    m.inc("a")
    m.gauge("g", 2.5)
    m.observe("t", 1.0)
    m.observe("t", 3.0)
    snap = m.as_dict()
    assert snap["counters"] == {"a": 1}
    assert snap["gauges"] == {"g": 2.5}
    summary = snap["timers"]["t"]
    assert summary["count"] == 2
    assert summary["total_s"] == 4.0
    assert summary["median_s"] == 2.0
    assert summary["max_s"] == 3.0
    assert "a" in m.render()


def test_null_registry_records_nothing():
    NULL_REGISTRY.inc("x", 100)
    NULL_REGISTRY.gauge("g", 1.0)
    NULL_REGISTRY.observe("t", 1.0)
    NULL_REGISTRY.merge_counters({"x": 1})
    stats = CacheStats()
    stats.hits = 9
    NULL_REGISTRY.absorb_cache_stats("c", stats)
    assert NULL_REGISTRY.counter("x") == 0
    assert NULL_REGISTRY.as_dict() == {"counters": {}, "gauges": {}, "timers": {}}


def test_store_counters_flow_through_absorb_unchanged():
    # the satellite contract: the store's hit/miss/write totals arrive
    # in the registry exactly as CacheStats.as_counters emits them
    stats = CacheStats(hits=4, misses=2, evictions=0, writes=7)
    m = MetricsRegistry()
    m.absorb_cache_stats("store", stats)
    for key, value in stats.as_counters(prefix="store_").items():
        assert m.counter(key) == value
    stats.writes = 9  # the store keeps counting; re-absorb SETS totals
    m.absorb_cache_stats("store", stats)
    assert m.counter("store_writes") == 9
