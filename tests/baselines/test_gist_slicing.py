"""Gist baseline: backward slicing, recurrence model, space sampling."""

from repro.baselines import (
    BackwardSlicer,
    GistDiagnoser,
    GistInstrumentation,
    SpaceSampling,
)
from repro.ir import parse_module
from repro.sim import Machine, RandomScheduler

SRC = """
module t
global g: i64 = 0
global h: i64 = 0
global mu: lock

func compute(x: i64) -> i64 {
entry:
  %r = mul %x, 2
  ret %r
}

func main(n: i64) -> i64 {
entry:
  %a = call @compute(%n)
  store %a, @g
  %unrelated = add 1, 2
  store %unrelated, @h
  %v = load @g        @ s.c:9
  %c = cmp gt %v, 4
  cbr %c, big, small
big:
  %r1 = add %v, 1
  ret %r1
small:
  ret %v
}
"""


def _module():
    return parse_module(SRC)


def test_slice_follows_data_deps():
    m = _module()
    slicer = BackwardSlicer(m)
    load_uid = next(i.uid for i in m.instructions() if i.loc and i.loc.line == 9)
    full = slicer.slice_from(load_uid)
    opcodes = {m.instruction(u).opcode for u in full}
    assert "store" in opcodes  # the store to g
    assert "call" in opcodes  # the producer call
    assert "binop" in opcodes  # the mul inside the callee
    # the unrelated store to h is NOT data-dependent... it is a store to
    # a different object, so it must be absent
    store_h = next(
        i.uid
        for i in m.instructions()
        if i.opcode == "store" and getattr(i.operands[1], "name", "") == "h"
    )
    assert store_h not in full


def test_slice_depth_bound_grows():
    m = _module()
    slicer = BackwardSlicer(m)
    load_uid = next(i.uid for i in m.instructions() if i.loc and i.loc.line == 9)
    small = slicer.slice_from(load_uid, max_depth=0)
    bigger = slicer.slice_from(load_uid, max_depth=3)
    assert small == {load_uid}
    assert small < bigger


def test_gist_diagnoser_needs_recurrences():
    m = _module()
    load_uid = next(i.uid for i in m.instructions() if i.loc and i.loc.line == 9)
    store_g = next(
        i.uid
        for i in m.instructions()
        if i.opcode == "store" and getattr(i.operands[1], "name", "") == "g"
    )
    result = GistDiagnoser(m).diagnose(load_uid, [store_g, load_uid])
    assert result.diagnosed
    assert result.recurrences_needed >= 2  # vs Snorlax's single failure
    assert result.attempts[0].monitored <= result.attempts[-1].monitored


def test_space_sampling_multiplies_latency():
    sampling = SpaceSampling(tracked_bugs=684)
    assert sampling.expected_latency_factor(3.7) == 684 * 3.7
    assert sampling.snorlax_latency() == 1


def test_instrumentation_charges_monitored_accesses():
    m = _module()
    monitored = {
        i.uid for i in m.instructions() if i.is_memory_access
    }
    instr = GistInstrumentation(monitored)
    base = Machine(parse_module(SRC), scheduler=RandomScheduler(0)).run("main", (5,))
    inst = Machine(
        _module(), scheduler=RandomScheduler(0), instrumentation=instr
    ).run("main", (5,))
    assert instr.events_recorded > 0
    assert inst.duration > base.duration


def test_instrumentation_ignores_unmonitored():
    m = _module()
    instr = GistInstrumentation(set())
    result = Machine(m, instrumentation=instr).run("main", (5,))
    assert instr.events_recorded == 0
