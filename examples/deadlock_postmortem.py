#!/usr/bin/env python3
"""Deadlock post-mortem: from a hang report to lock-ordering evidence.

Reproduces the SQLite-style AB-BA deadlock (corpus bug sqlite-1672):
commit takes the db mutex then the pager mutex; checkpoint takes them in
the opposite order.  The OS hang detector reports the cycle; Lazy
Diagnosis orders the four lock events (two holds, two blocked attempts)
from the trace and reports them with full confidence.

Run:  python examples/deadlock_postmortem.py
"""

from repro import SnorlaxClient, SnorlaxServer, corpus


def main() -> None:
    spec = corpus.bug("sqlite-1672")
    module = spec.module()
    client = SnorlaxClient(module, spec.workload, entry=spec.entry)

    failing = client.find_runs(want_failing=True, count=1)[0]
    report_failure = failing.failure.report
    print("hang detector output (what the client ships to the server):")
    for entry in report_failure.cycle:
        instr = module.instruction(entry.instr_uid)
        print(
            f"  T{entry.tid} blocked at {instr.loc} since t={entry.since}ns,"
            f" holding {len(entry.held_locks)} lock(s)"
        )
    dt_us = abs(report_failure.cycle[0].since - report_failure.cycle[1].since) / 1000
    print(f"  -> the two attempts are {dt_us:.0f} us apart (coarse interleaving!)\n")

    report = SnorlaxServer(module).diagnose(failing, client).report
    print(report.render())

    print("\nreading the result: each thread grabbed its first lock, then")
    print("attempted the other thread's lock while both were still held —")
    print("the fix is a single global acquisition order.")
    assert report.bug_kind == "deadlock"
    assert report.ordered_target_uids() == spec.target_uids()


if __name__ == "__main__":
    main()
