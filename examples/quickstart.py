#!/usr/bin/env python3
"""Quickstart: diagnose the classic pbzip2 use-after-free in ~20 lines.

The corpus bug "pbzip2-n/a" models the famous crash: main tears down the
FIFO queue at exit while a consumer thread still reads it.  We run the
app under always-on PT-like tracing until it fails once, let the server
gather successful traces at the failure location, and print the root
cause Lazy Diagnosis produces.

Run:  python examples/quickstart.py
"""

from repro import SnorlaxClient, SnorlaxServer, corpus

def main() -> None:
    spec = corpus.bug("pbzip2-n/a")
    module = spec.module()
    print(f"bug: {spec.bug_id} — {spec.description}")
    print(f"app model: {module.instruction_count()} IR instructions\n")

    # The "production client": runs the workload under tracing.
    client = SnorlaxClient(module, spec.workload, entry=spec.entry)

    # Keep serving (seeds = requests) until the bug bites once.
    failing = client.find_runs(want_failing=True, count=1)[0]
    failure = failing.failure
    print(
        f"failure after seed {failing.seed}: {failure.kind} at uid="
        f"{failure.failing_uid} "
        f"({module.instruction(failure.failing_uid).loc}) on T{failure.failing_tid}"
    )

    # The server collects ~10 successful traces at the same PC and runs
    # Lazy Diagnosis (steps 2-7 of the paper's Figure 2).
    server = SnorlaxServer(module)
    report = server.diagnose(failing, client).report
    print()
    print(report.render())

    truth = spec.target_uids()
    print(f"\nground truth (developer-verified): {truth}")
    print(f"diagnosed:                         {report.ordered_target_uids()}")
    assert report.ordered_target_uids() == truth, "diagnosis mismatch!"
    print("exact root-cause match — the fix is to free after joining.")


if __name__ == "__main__":
    main()
