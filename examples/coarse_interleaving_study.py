#!/usr/bin/env python3
"""Mini coarse-interleaving study (§3 of the paper) on a few bugs.

For each chosen bug: instrument its target instructions (the simulated
equivalent of the paper's clock_gettime injection), reproduce the bug
ten times by plain repetition, and report the elapsed time between the
target events.  The headline claim: every gap is far above the ~1 ns
granularity a fine-grained record/replay system would need — which is
why the coarse PT timestamps suffice for diagnosis.

Run:  python examples/coarse_interleaving_study.py
"""

import math

from repro.bench import measure_cih, render_table
from repro.corpus import bug

BUGS = ["pbzip2-n/a", "aget-n/a", "sqlite-1672", "memcached-127", "jdk-6822370"]


def main() -> None:
    rows = []
    global_min = float("inf")
    for bug_id in BUGS:
        spec = bug(bug_id)
        m = measure_cih(spec, runs=10)
        gaps = " / ".join(
            f"{m.mean_us(i):.0f}±{m.std_us(i):.0f}" for i in range(m.n_gaps)
        )
        rows.append(
            (spec.system, bug_id, spec.ground_truth.pattern, gaps,
             f"{m.min_us():.0f}", m.runs_needed)
        )
        global_min = min(global_min, m.min_us())
    print(
        render_table(
            "Time elapsed between target events (us), 10 failing runs each",
            ["system", "bug", "pattern", "dT avg±std", "min", "execs needed"],
            rows,
        )
    )
    orders = math.log10(global_min * 1000 / 1.0)
    print(
        f"\nsmallest gap observed: {global_min:.0f} us — "
        f"{orders:.1f} orders of magnitude above 1 ns recording granularity."
    )
    print("Coarse timing is enough to order these events; that is the paper's")
    print("coarse interleaving hypothesis.")


if __name__ == "__main__":
    main()
