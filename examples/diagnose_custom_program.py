#!/usr/bin/env python3
"""Bring your own program: write IR, inject a race, diagnose it.

This example shows the full public surface without the corpus: a small
cache server written in the textual IR, whose invalidation thread clears
an entry between another thread's check and use (an RWR atomicity
violation).  We trace it, crash it, and let Lazy Diagnosis name the
interleaving.

Run:  python examples/diagnose_custom_program.py
"""

import random

from repro import SnorlaxClient, SnorlaxServer, parse_module

SOURCE = """
module cacheserver

struct Entry { bytes: i64 }
struct Cache { hot: ptr<Entry>, hits: i64 }

global g_cache: ptr<Cache> = null

func lookup_worker(n: i64, d_window: i64, d_idle: i64) -> void {
entry:
  %i = alloca i64
  store 0, %i
  br loop
loop:
  %iv = load %i
  %c = cmp lt %iv, %n
  cbr %c, body, done
body:
  %cache = load @g_cache
  %hp = fieldaddr %cache, hot
  %e1 = load %hp                 @ cache.c:31
  %nz = cast %e1 to i64
  %ok = cmp ne %nz, 0
  cbr %ok, use, skip
use:
  delay %d_window
  %e2 = load %hp                 @ cache.c:35
  %bp = fieldaddr %e2, bytes
  %b = load %bp                  @ cache.c:36
  %pos = cmp ge %b, 0
  cbr %pos, skip, skip
skip:
  delay %d_idle
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  ret
}

func invalidate_once(d_gap: i64) -> void {
entry:
  %cache = load @g_cache
  %hp = fieldaddr %cache, hot
  store null, %hp                @ cache.c:80
  %z = cmp eq 0, 1
  cbr %z, never, cont
never:
  ret
cont:
  delay %d_gap
  %fresh = malloc Entry
  %fb = fieldaddr %fresh, bytes
  store 128, %fb
  store %fresh, %hp              @ cache.c:85
  ret
}

func invalidator(n: i64, off: i64, d_gap: i64, d_per: i64) -> void {
entry:
  delay %off
  %k = alloca i64
  store 0, %k
  br loop
loop:
  %kv = load %k
  %c = cmp lt %kv, %n
  cbr %c, body, done
body:
  call @invalidate_once(%d_gap)
  delay %d_per
  %k2 = add %kv, 1
  store %k2, %k
  br loop
done:
  ret
}

func main(n: i64, d_window: i64, d_idle: i64, off: i64, d_per: i64) -> void {
entry:
  %cache = malloc Cache
  %first = malloc Entry
  %fb = fieldaddr %first, bytes
  store 64, %fb
  %hp = fieldaddr %cache, hot
  store %first, %hp
  store %cache, @g_cache
  call @invalidate_once(2000)    ; benign maintenance pass at startup
  %t1 = spawn @lookup_worker(%n, %d_window, %d_idle)
  %t2 = spawn @invalidator(%n, %off, %d_gap_unused, %d_per)
  join %t1
  join %t2
  ret
}
"""
SOURCE = SOURCE.replace("%d_gap_unused", "3000000")

Q = 250_000  # 250us quantum: events stay coarsely interleaved


def workload(seed: int) -> tuple:
    rng = random.Random(seed)
    cycle = 3 * Q
    slot = rng.choice([0.5, 1.5, 2.5])  # in-window (racy) vs idle (benign)
    off = int(rng.randint(0, 3) * cycle + slot * Q)
    return (6, 2 * Q, Q, off, 3 * Q)


def main() -> None:
    module = parse_module(SOURCE)
    client = SnorlaxClient(module, workload)
    print("serving lookups until the invalidation race bites...")
    failing = client.find_runs(want_failing=True, count=1)[0]
    failure = failing.failure
    loc = module.instruction(failure.failing_uid).loc
    print(f"crash: {failure.report.detail} at {loc}\n")

    report = SnorlaxServer(module).diagnose(failing, client).report
    print(report.render())
    print()
    kinds = report.root_cause.signature.kind
    print(f"diagnosed pattern class: {kinds} — the check at cache.c:31 and the")
    print("use at cache.c:35 are not atomic against the clear at cache.c:80.")


if __name__ == "__main__":
    main()
